"""Declarative pipeline configuration: :class:`PipelineSpec`.

A spec is a plain, JSON-serialisable description of a full LearnRisk pipeline:
which classifier, vectoriser and risk-feature generator to build (by registry
key plus parameters), which risk metric to score with, the risk-model training
hyper-parameters and the decision threshold.  Opening a new workload then means
writing a config file, not editing code::

    {
      "classifier": {"kind": "logistic", "params": {"epochs": 200}},
      "risk_features": {"kind": "onesided_tree", "params": {"tree": {"max_depth": 2}}},
      "risk_metric": "var",
      "training": {"epochs": 100},
      "decision_threshold": 0.5,
      "seed": 0
    }

``build_pipeline(PipelineSpec.from_json(text))`` assembles the staged pipeline
(see :mod:`repro.compose.staged`); the spec rides along in the pipeline state,
so a saved model remembers the configuration that produced it.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..classifiers.base import BaseClassifier
from ..exceptions import ConfigurationError
from ..parallel.config import ExecutionConfig
from ..risk.training import TrainingConfig
from ..serialization import dataclass_from_dict
from .registries import (
    CLASSIFIERS,
    PAIR_SOURCES,
    RISK_FEATURE_GENERATORS,
    VECTORIZERS,
    resolve_risk_metric,
)

#: Classifier params reproducing the legacy pipeline default
#: (:func:`repro.evaluation.experiment.default_classifier_factory`).
DEFAULT_CLASSIFIER_PARAMS: dict[str, Any] = {
    "hidden_sizes": [32, 16],
    "epochs": 60,
    "l2": 1e-5,
}


@dataclass(frozen=True)
class ComponentSpec:
    """One pluggable component: a registry key plus factory parameters."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ConfigurationError("component kind must be a non-empty string")
        if not isinstance(self.params, Mapping):
            raise ConfigurationError(
                f"component {self.kind!r} params must be a mapping, "
                f"got {type(self.params).__name__}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def coerce(cls, value: Any, component: str) -> "ComponentSpec":
        """Build from a :class:`ComponentSpec`, a bare kind string or a dict."""
        if isinstance(value, ComponentSpec):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"kind", "params"}
            if unknown:
                raise ConfigurationError(
                    f"unknown keys {sorted(unknown)} in {component} spec; "
                    f"expected 'kind' and optional 'params'"
                )
            if "kind" not in value:
                raise ConfigurationError(f"{component} spec is missing 'kind'")
            return cls(kind=value["kind"], params=value.get("params") or {})
        raise ConfigurationError(
            f"{component} spec must be a string, mapping or ComponentSpec, "
            f"got {type(value).__name__}"
        )


def _json_safe(value: Any) -> tuple[bool, Any]:
    """Whether ``value`` survives a JSON round trip, and its JSON form."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return True, value
    if isinstance(value, (list, tuple)):
        items = [_json_safe(item) for item in value]
        return all(ok for ok, _ in items), [item for _, item in items]
    if isinstance(value, Mapping):
        items = {str(k): _json_safe(v) for k, v in value.items()}
        return all(ok for ok, _ in items.values()), {k: v for k, (_, v) in items.items()}
    return False, None


def component_spec_for_classifier(classifier: BaseClassifier) -> ComponentSpec:
    """A registry-valid :class:`ComponentSpec` describing a classifier instance.

    When the classifier's class is a registered factory, the spec records that
    registry key plus every JSON-serialisable constructor argument read back
    from the instance (the built-ins store them as same-named attributes), so
    ``build_pipeline`` on the resulting spec re-creates an equivalent
    classifier.  Unregistered classes are recorded as ``"custom"`` —
    informational only, not re-creatable from configuration.
    """
    kind = next(
        (key for key, factory in CLASSIFIERS._factories.items()
         if factory is type(classifier)),
        None,
    )
    if kind is None:
        return ComponentSpec("custom")
    params: dict[str, Any] = {}
    for name, parameter in inspect.signature(type(classifier)).parameters.items():
        if parameter.kind not in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY
        ):
            continue
        if not hasattr(classifier, name):
            continue
        serialisable, value = _json_safe(getattr(classifier, name))
        if serialisable:
            params[name] = value
    return ComponentSpec(kind, params)


_TRAINING_FIELDS = {config_field.name for config_field in dataclasses.fields(TrainingConfig)}
_SPEC_FIELDS = (
    "classifier", "vectorizer", "risk_features", "source", "execution",
    "online", "risk_metric", "training", "decision_threshold", "seed",
)


@dataclass
class PipelineSpec:
    """Declarative, JSON-serialisable configuration of a full pipeline.

    Attributes
    ----------
    classifier, vectorizer, risk_features:
        Component specs resolved through the registries of
        :mod:`repro.compose.registries`.
    source:
        Optional data-backend spec resolved through the pair-source registry
        (``"csv"``, ``"dataset"``, ``"generator"``, ``"sharded"``, ``"blocked"``,
        or anything added via ``register_source``).  When set, the pipeline
        knows where its pairs stream from and ``StagedPipeline.build_source()``
        (or :func:`build_source`) materialises the backend.  The ``"blocked"``
        backend generates candidates on the fly from a raw record corpus
        through :mod:`repro.blocking`, so a spec can fit and score without any
        pre-blocked pair list existing anywhere.
    execution:
        Optional :class:`~repro.parallel.config.ExecutionConfig` (or its
        ``to_dict`` mapping) with the default multi-worker scoring setup —
        worker count, pool backend, chunk size.  Purely a throughput knob:
        scores are bit-identical at any worker count, so the field never
        changes *what* a pipeline computes, only how fast.
    online:
        Optional online-resolution policy spec resolved through
        :data:`repro.online.POLICIES` (``"threshold"`` by default; see
        :class:`~repro.online.ResolutionPolicy` for the parameters).  When
        set, ``spec.online_policy()`` builds the policy that drives an
        :class:`~repro.online.OnlineResolver` (the serve CLI's ``resolve``
        command and the HTTP tier's ``POST /resolve`` path).
    risk_metric:
        Name of a registered risk metric (``"var"``, ``"cvar"``,
        ``"expectation"``, or anything added via ``register_risk_metric``).
    training:
        :class:`~repro.risk.training.TrainingConfig` field overrides; omitted
        fields keep the paper defaults.
    decision_threshold:
        Classifier probability above which a pair is machine-labeled matching.
    seed:
        Spec-level seed injected into seeded component factories (and the
        training config) unless they pin their own.
    """

    classifier: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("mlp", dict(DEFAULT_CLASSIFIER_PARAMS))
    )
    vectorizer: ComponentSpec = field(default_factory=lambda: ComponentSpec("basic"))
    risk_features: ComponentSpec = field(default_factory=lambda: ComponentSpec("onesided_tree"))
    source: ComponentSpec | None = None
    execution: ExecutionConfig | None = None
    online: ComponentSpec | None = None
    risk_metric: str = "var"
    training: dict[str, Any] = field(default_factory=dict)
    decision_threshold: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        self.classifier = ComponentSpec.coerce(self.classifier, "classifier")
        self.vectorizer = ComponentSpec.coerce(self.vectorizer, "vectorizer")
        self.risk_features = ComponentSpec.coerce(self.risk_features, "risk_features")
        if self.source is not None:
            self.source = ComponentSpec.coerce(self.source, "source")
        if self.online is not None:
            self.online = ComponentSpec.coerce(self.online, "online")
        self.execution = ExecutionConfig.coerce(self.execution)
        if not isinstance(self.training, Mapping):
            raise ConfigurationError(
                f"training must be a mapping of TrainingConfig fields, "
                f"got {type(self.training).__name__}"
            )
        self.training = dict(self.training)
        unknown = set(self.training) - _TRAINING_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown training parameters {sorted(unknown)}; "
                f"known parameters: {sorted(_TRAINING_FIELDS)}"
            )
        if not 0.0 <= float(self.decision_threshold) <= 1.0:
            raise ConfigurationError(
                f"decision_threshold must be in [0, 1], got {self.decision_threshold}"
            )
        self.decision_threshold = float(self.decision_threshold)
        self.seed = int(self.seed)

    # ------------------------------------------------------------- validation
    def validate(self, require_components: bool = True) -> "PipelineSpec":
        """Check the spec against the registries; returns ``self``.

        ``require_components=False`` skips the registry lookups of the three
        buildable components — used when pre-built component instances are
        supplied (the legacy ``LearnRiskPipeline`` facade), where only the
        risk metric and scalar fields must hold.
        """
        resolve_risk_metric(self.risk_metric)
        if require_components:
            CLASSIFIERS.get(self.classifier.kind)
            VECTORIZERS.get(self.vectorizer.kind)
            RISK_FEATURE_GENERATORS.get(self.risk_features.kind)
            if self.source is not None:
                PAIR_SOURCES.get(self.source.kind)
            if self.online is not None:
                self.online_policy()
        return self

    def online_policy(self):
        """Materialise the ``online`` component as a resolution policy.

        Resolved lazily through :data:`repro.online.POLICIES` so specs that
        never go online pay no import cost.  Raises
        :class:`~repro.exceptions.ConfigurationError` when no ``online``
        component is configured.
        """
        if self.online is None:
            raise ConfigurationError("pipeline spec has no 'online' component")
        from ..online import create_policy

        return create_policy(self.online.kind, self.online.params)

    def training_config(self) -> TrainingConfig:
        """Materialise the training configuration (spec seed as the default seed)."""
        values = dict(self.training)
        values.setdefault("seed", self.seed)
        return dataclass_from_dict(TrainingConfig, values)

    # ----------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (inverse of :meth:`from_dict`).

        The ``source`` key is only emitted when a data backend is configured,
        so specs written by older library versions round-trip unchanged.
        """
        values = {
            "classifier": self.classifier.to_dict(),
            "vectorizer": self.vectorizer.to_dict(),
            "risk_features": self.risk_features.to_dict(),
            "risk_metric": self.risk_metric,
            "training": dict(self.training),
            "decision_threshold": self.decision_threshold,
            "seed": self.seed,
        }
        if self.source is not None:
            values["source"] = self.source.to_dict()
        if self.execution is not None:
            values["execution"] = self.execution.to_dict()
        if self.online is not None:
            values["online"] = self.online.to_dict()
        return values

    @classmethod
    def from_dict(cls, values: Mapping[str, Any]) -> "PipelineSpec":
        """Build a spec from a mapping, rejecting unknown keys loudly."""
        if not isinstance(values, Mapping):
            raise ConfigurationError(
                f"pipeline spec must be a mapping, got {type(values).__name__}"
            )
        unknown = set(values) - set(_SPEC_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown pipeline spec keys {sorted(unknown)}; "
                f"known keys: {sorted(_SPEC_FIELDS)}"
            )
        kwargs = {key: values[key] for key in _SPEC_FIELDS if key in values}
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Parse a spec from a JSON document (inverse of :meth:`to_json`)."""
        try:
            values = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"pipeline spec is not valid JSON: {exc}") from exc
        return cls.from_dict(values)
