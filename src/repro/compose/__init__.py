"""Composable, config-driven pipeline API.

This package turns the LearnRisk workflow into configuration plus pluggable
components:

* :mod:`repro.compose.spec` — :class:`PipelineSpec`, a declarative,
  JSON-serialisable description of a full pipeline (classifier, vectoriser,
  risk features, risk metric, training, decision threshold);
* :mod:`repro.compose.registries` — string-keyed component registries
  (:func:`register_classifier`, :func:`register_vectorizer`,
  :func:`register_risk_feature_generator`, :func:`register_risk_metric`,
  :func:`register_source` for streaming pair-source backends) so new
  components plug in without touching core code;
* :mod:`repro.compose.staged` — :class:`StagedPipeline`, the staged fitting
  core (``fit_vectorizer`` → ``fit_classifier`` → ``generate_risk_features``
  → ``fit_risk_model``) with incremental ``refit_risk_model`` and streaming
  ``analyse_batches``, assembled from a spec by :func:`build_pipeline`.

Quick start::

    from repro.compose import PipelineSpec, build_pipeline

    spec = PipelineSpec.from_json(Path("spec.json").read_text())
    pipeline = build_pipeline(spec).fit(split.train, split.validation)
    report = pipeline.analyse(split.test)

The classic :class:`repro.pipeline.LearnRiskPipeline` is a thin facade over
:class:`StagedPipeline`, so everything here applies to it too.
"""

from .registries import (
    CLASSIFIERS,
    PAIR_SOURCES,
    RISK_FEATURE_GENERATORS,
    VECTORIZERS,
    ComponentRegistry,
    create_classifier,
    create_risk_feature_generator,
    create_source,
    create_vectorizer,
    register_classifier,
    register_risk_feature_generator,
    register_risk_metric,
    register_source,
    register_vectorizer,
    registered_classifiers,
    registered_risk_feature_generators,
    registered_risk_metrics,
    registered_sources,
    registered_vectorizers,
    resolve_risk_metric,
)
from .spec import ComponentSpec, PipelineSpec
from .staged import RiskReport, StagedPipeline, build_pipeline

__all__ = [
    "CLASSIFIERS",
    "ComponentRegistry",
    "ComponentSpec",
    "PAIR_SOURCES",
    "PipelineSpec",
    "RISK_FEATURE_GENERATORS",
    "RiskReport",
    "StagedPipeline",
    "VECTORIZERS",
    "build_pipeline",
    "create_classifier",
    "create_risk_feature_generator",
    "create_source",
    "create_vectorizer",
    "register_classifier",
    "register_risk_feature_generator",
    "register_risk_metric",
    "register_source",
    "register_vectorizer",
    "registered_classifiers",
    "registered_risk_feature_generators",
    "registered_risk_metrics",
    "registered_sources",
    "registered_vectorizers",
    "resolve_risk_metric",
]
