"""The staged pipeline core: independently runnable LearnRisk stages.

:class:`StagedPipeline` decomposes the monolithic ``fit(train, validation)``
workflow into four explicit stages, each runnable (and re-runnable) on its own::

    pipeline = build_pipeline(spec)
    pipeline.fit_vectorizer(split.train)        # corpus statistics
    pipeline.fit_classifier(split.train)        # the machine classifier
    pipeline.generate_risk_features(split.train)  # one-sided rules
    pipeline.fit_risk_model(split.validation)   # the learnable risk layer

``fit(train, validation)`` runs all four in order and is bit-identical to the
legacy :class:`~repro.pipeline.LearnRiskPipeline` path.  The staging is what
makes incremental operation possible:

* :meth:`refit_risk_model` re-trains only the (cheap) risk layer on fresh
  validation data while keeping the expensive classifier and rule set;
* :meth:`analyse_batches` streams :class:`RiskReport` chunks over a large
  workload instead of materialising one giant report.

Construction is spec-driven (:func:`build_pipeline` resolves every component
through the registries), but pre-built component instances can be injected for
programmatic composition — the legacy facade uses exactly that hook.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from ..classifiers.base import BaseClassifier, classifier_from_state
from ..data.records import RecordPair
from ..data.sources import PairSource, as_workload
from ..data.workload import Workload
from ..evaluation.roc import auroc_score, mislabel_indicator
from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..features.vectorizer import PairVectorizer
from ..obs import get_recorder
from ..parallel.chunks import ChunkScores
from ..parallel.config import ExecutionConfig
from ..risk.feature_generation import GeneratedRiskFeatures, RiskFeatureGenerator
from ..risk.model import FeatureExplanation, LearnRiskModel, PairRiskExplanation
from ..risk.onesided_tree import OneSidedTreeConfig
from ..risk.training import TrainingConfig
from ..serialization import (
    component_state,
    dataclass_from_dict,
    require_state,
    state_field,
)
from .registries import (
    VECTORIZERS,
    create_classifier,
    create_risk_feature_generator,
    create_source,
    create_vectorizer,
)
from .spec import ComponentSpec, PipelineSpec, component_spec_for_classifier


@dataclass
class RiskReport:
    """The outcome of analysing a workload with a fitted pipeline."""

    pairs: list[RecordPair]
    machine_probabilities: np.ndarray
    machine_labels: np.ndarray
    risk_scores: np.ndarray
    ranking: np.ndarray
    auroc: float | None = None
    explanations: dict[int, list[FeatureExplanation]] = field(default_factory=dict)

    def top_risky(self, k: int = 10) -> list[tuple[RecordPair, float]]:
        """The ``k`` riskiest pairs with their scores, most risky first."""
        top = self.ranking[:k]
        return [(self.pairs[int(index)], float(self.risk_scores[int(index)])) for index in top]


@dataclass
class _PipelineStateParts:
    """The reconstructed pieces of a saved pipeline state (shared by loaders)."""

    spec: PipelineSpec
    classifier: BaseClassifier
    training_config: TrainingConfig
    tree_config: OneSidedTreeConfig | None
    vectorizer: PairVectorizer
    risk_model: LearnRiskModel


class StagedPipeline:
    """Spec-driven LearnRisk pipeline with an explicit staged protocol.

    Parameters
    ----------
    spec:
        The declarative configuration (a :class:`PipelineSpec`, a mapping in
        its ``to_dict`` layout, or ``None`` for the defaults).
    classifier, vectorizer, feature_generator, training_config:
        Optional pre-built instances overriding spec-driven construction of the
        corresponding component.  The spec's registry key for an overridden
        component is informational only.
    """

    def __init__(
        self,
        spec: PipelineSpec | Mapping[str, Any] | None = None,
        *,
        classifier: BaseClassifier | None = None,
        vectorizer: PairVectorizer | None = None,
        feature_generator: Any | None = None,
        training_config: TrainingConfig | None = None,
    ) -> None:
        if spec is None:
            spec = PipelineSpec()
        elif not isinstance(spec, PipelineSpec):
            spec = PipelineSpec.from_dict(spec)
        # Validate eagerly: an unknown risk metric or component key must fail
        # here, at construction, not hundreds of seconds into training.
        spec.validate(require_components=False)
        self.spec = spec
        if classifier is None:
            classifier = create_classifier(spec.classifier.kind, spec.classifier.params, spec.seed)
        self.classifier = classifier
        self._vectorizer_injected = vectorizer is not None
        self.vectorizer: PairVectorizer | None = vectorizer
        if vectorizer is None:
            VECTORIZERS.get(spec.vectorizer.kind)
        if feature_generator is None:
            feature_generator = create_risk_feature_generator(
                spec.risk_features.kind, spec.risk_features.params, spec.seed
            )
        self.feature_generator = feature_generator
        self.training_config = training_config or spec.training_config()
        #: Default execution configuration for chunked scoring (spec-driven;
        #: per-call ``workers=`` / ``execution=`` arguments override it).
        self.execution: ExecutionConfig | None = spec.execution
        self.risk_features: GeneratedRiskFeatures | None = None
        self.risk_model: LearnRiskModel | None = None
        self._fitted = False

    # -------------------------------------------------------------- liveness
    @property
    def is_fitted(self) -> bool:
        """``True`` once every stage has completed (or a fitted state was loaded)."""
        return self._fitted

    @property
    def ready(self) -> bool:
        """Alias of :attr:`is_fitted`, the vocabulary used by the serving layer."""
        return self.is_fitted

    @property
    def decision_threshold(self) -> float:
        """Probability threshold above which a pair is machine-labeled matching."""
        return self.spec.decision_threshold

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")

    def _require_vectorizer(self) -> PairVectorizer:
        if self.vectorizer is None:
            raise NotFittedError("run fit_vectorizer before this stage")
        return self.vectorizer

    # ---------------------------------------------------------------- stages
    def fit_vectorizer(self, workload: Workload) -> "StagedPipeline":
        """Stage 1 — build the vectoriser and fit its corpus statistics."""
        if workload.left_table is None:
            raise DataError(
                "fit_vectorizer requires a workload with source tables "
                "(the schema and corpus statistics come from them)"
            )
        if self._vectorizer_injected and self.vectorizer is not None:
            vectorizer = self.vectorizer
        else:
            vectorizer = create_vectorizer(
                self.spec.vectorizer.kind,
                workload.left_table.schema,
                self.spec.vectorizer.params,
            )
        with get_recorder().span("fit_vectorizer"):
            vectorizer.fit(workload.left_table, workload.right_table)
        self.vectorizer = vectorizer
        return self

    def fit_classifier(self, train: Workload) -> "StagedPipeline":
        """Stage 2 — train the machine classifier on the training pairs."""
        vectorizer = self._require_vectorizer()
        with get_recorder().span("fit_classifier"):
            features = vectorizer.transform(train.pairs)
            self.classifier.fit(features, train.labels())
        return self

    def generate_risk_features(self, train: Workload) -> "StagedPipeline":
        """Stage 3 — generate the interpretable risk features (one-sided rules)."""
        vectorizer = self._require_vectorizer()
        with get_recorder().span("generate_risk_features"):
            self.risk_features = self.feature_generator.generate(train, vectorizer=vectorizer)
        return self

    def fit_risk_model(self, validation: Workload) -> "StagedPipeline":
        """Stage 4 — train the learnable risk model on validation data.

        Builds a fresh :class:`LearnRiskModel` from the generated risk features
        and the spec's risk metric / training config, then fits it on the
        classifier's outputs over ``validation``.
        """
        vectorizer = self._require_vectorizer()
        if self.risk_features is None:
            raise NotFittedError("run generate_risk_features before fit_risk_model")
        self.risk_model = LearnRiskModel(
            self.risk_features,
            config=self.training_config,
            risk_metric=self.spec.risk_metric,
        )
        with get_recorder().span("fit_risk_model"):
            features = vectorizer.transform(validation.pairs)
            probabilities = self.classifier.predict_proba(features)
            machine_labels = self._threshold(probabilities)
            self.risk_model.fit(features, probabilities, machine_labels, validation.labels())
        self._fitted = True
        return self

    def fit(self, train: Workload, validation: Workload) -> "StagedPipeline":
        """Run all four stages: train the classifier on ``train`` and the risk
        model on ``validation`` (bit-identical to the legacy monolithic fit)."""
        return (
            self.fit_vectorizer(train)
            .fit_classifier(train)
            .generate_risk_features(train)
            .fit_risk_model(validation)
        )

    # ----------------------------------------------------------- incremental
    def refit_risk_model(self, validation: Workload) -> "StagedPipeline":
        """Re-train only the risk layer on new validation data.

        The (expensive) classifier, the fitted vectoriser and the generated
        rule set are kept as they are; only the learnable risk parameters are
        re-initialised and re-fitted.  This is the cheap way to adapt a served
        model to freshly labeled validation pairs.
        """
        self._check_incremental_ready()
        return self.fit_risk_model(validation)

    # -------------------------------------------------------------- data source
    def build_source(self) -> PairSource:
        """Materialise the spec-named data backend (``spec.source``).

        Raises
        ------
        ConfigurationError
            When the spec names no source, or names an unregistered one.
        """
        if self.spec.source is None:
            raise ConfigurationError(
                "the pipeline spec names no data source; set the spec's 'source' "
                "field (e.g. {\"kind\": \"csv\", \"params\": {...}})"
            )
        return create_source(self.spec.source.kind, self.spec.source.params, self.spec.seed)

    def _check_incremental_ready(self) -> None:
        if self.vectorizer is None or self.risk_features is None:
            raise NotFittedError(
                "refit_risk_model requires a pipeline whose vectoriser, classifier "
                "and risk features are already fitted (run fit once, or load a "
                "saved pipeline)"
            )

    # ----------------------------------------------------------------- scoring
    def _threshold(self, probabilities: np.ndarray) -> np.ndarray:
        """Hard labels from probabilities; the one place the threshold lives."""
        return (probabilities >= self.spec.decision_threshold).astype(int)

    def classify_matrix(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Classifier probabilities and thresholded hard labels for a metric matrix."""
        with get_recorder().span("classify"):
            probabilities = self.classifier.predict_proba(matrix)
            return probabilities, self._threshold(probabilities)

    def _classify_pairs(self, pairs: list[RecordPair]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The shared vectorize → predict → threshold path: (matrix, probabilities, labels)."""
        matrix = self._require_vectorizer().transform(pairs)
        probabilities, machine_labels = self.classify_matrix(matrix)
        return matrix, probabilities, machine_labels

    def label(
        self, workload: Workload | PairSource, batch_size: int = 1024
    ) -> tuple[np.ndarray, np.ndarray]:
        """Label a workload with the classifier: ``(probabilities, hard labels)``.

        A :class:`~repro.data.sources.PairSource` is labeled chunk by chunk
        (``batch_size`` pairs at a time) so memory stays bounded by the chunk;
        an eager workload keeps the legacy one-shot path bit for bit.
        """
        self._check_fitted()
        if isinstance(workload, PairSource):
            probability_chunks: list[np.ndarray] = []
            label_chunks: list[np.ndarray] = []
            for chunk in workload.iter_chunks(batch_size):
                _, probabilities, machine_labels = self._classify_pairs(chunk)
                probability_chunks.append(probabilities)
                label_chunks.append(machine_labels)
            if not probability_chunks:
                return np.zeros(0, dtype=float), np.zeros(0, dtype=int)
            return np.concatenate(probability_chunks), np.concatenate(label_chunks)
        _, probabilities, machine_labels = self._classify_pairs(workload.pairs)
        return probabilities, machine_labels

    def score_chunk(self, pairs: list[RecordPair], explain_top: int = 0) -> ChunkScores:
        """Score one chunk of pairs: the shared unit of serial *and* parallel work.

        This is the exact computation a pool worker runs on its shard — the
        serial streaming loop, the thread backend and the process backend all
        call this one method (on the parent pipeline or on a state-identical
        clone), which is what makes multi-worker output structurally
        bit-identical to the serial path.
        """
        self._check_fitted()
        recorder = get_recorder()
        with recorder.span("score_chunk"):
            matrix, probabilities, machine_labels = self._classify_pairs(pairs)
            risk_scores = self.risk_model.score(matrix, probabilities, machine_labels)
            ranking = np.argsort(-risk_scores, kind="stable")
            explanations: dict[int, list[FeatureExplanation]] = {}
            for index in ranking[:explain_top]:
                explanations[int(index)] = self.risk_model.explain(
                    matrix[int(index)], float(probabilities[int(index)])
                )
        recorder.count("pipeline.chunks_scored")
        recorder.count("pipeline.pairs_scored", len(pairs))
        return ChunkScores(
            probabilities=probabilities,
            machine_labels=machine_labels,
            risk_scores=risk_scores,
            ranking=ranking,
            explanations=explanations,
        )

    def _report_from_scores(self, pairs: list[RecordPair], scores: ChunkScores) -> RiskReport:
        """Assemble a :class:`RiskReport` from a chunk's scoring outputs.

        The AUROC is computed here, on the dispatching side, from the returned
        arrays plus the pairs' ground truth — identical code for chunks scored
        serially and chunks scored by a pool worker.
        """
        # AUROC is only defined for labeled workloads on which the classifier
        # made some (but not only) mistakes; check explicitly instead of
        # swallowing exceptions, so genuine scoring bugs surface.
        auroc = None
        if pairs and all(pair.ground_truth is not None for pair in pairs):
            ground_truth = np.array([pair.ground_truth for pair in pairs], dtype=int)
            risk_labels = mislabel_indicator(scores.machine_labels, ground_truth)
            if 0 < risk_labels.sum() < len(risk_labels):
                auroc = auroc_score(risk_labels, scores.risk_scores)
        return RiskReport(
            pairs=list(pairs),
            machine_probabilities=scores.probabilities,
            machine_labels=scores.machine_labels,
            risk_scores=scores.risk_scores,
            ranking=scores.ranking,
            auroc=auroc,
            explanations=dict(scores.explanations),
        )

    def _report(
        self, pairs: list[RecordPair], explain_top: int = 0
    ) -> RiskReport:
        """Score ``pairs`` and assemble a :class:`RiskReport`."""
        return self._report_from_scores(pairs, self.score_chunk(pairs, explain_top=explain_top))

    def analyse(self, workload: Workload | PairSource, explain_top: int = 0) -> RiskReport:
        """Label ``workload`` and rank its pairs by mislabeling risk.

        When the workload carries ground truth the report includes the AUROC
        of the risk ranking; ``explain_top`` attaches rule-level explanations
        for the given number of riskiest pairs.  A bounded
        :class:`~repro.data.sources.PairSource` is materialised first (a
        single report needs every pair); use :meth:`analyse_batches` to stay
        out-of-core.
        """
        self._check_fitted()
        return self._report(list(as_workload(workload).pairs), explain_top=explain_top)

    def warm_kernel(self) -> None:
        """Compile the rule-coverage kernel now (explicit warm-up).

        Called before streaming so every chunk reuses one compiled kernel
        instead of the first chunk paying the build cost; pool workers call it
        once right after rebuilding their pipeline (the kernel is lazy state
        that is deliberately not pickled).
        """
        self._check_fitted()
        self.risk_model.features.warm_kernel()

    def _resolve_execution(
        self,
        workers: int | None = None,
        execution: ExecutionConfig | Mapping[str, Any] | None = None,
    ) -> ExecutionConfig:
        """Merge the per-call execution overrides with the spec-level default."""
        config = ExecutionConfig.coerce(execution)
        if config is None:
            config = self.execution or ExecutionConfig()
        return config.with_workers(workers)

    @staticmethod
    def _length_hint(workload: Workload | PairSource) -> int | None:
        """Total pairs when cheaply known (steers auto backend choice only).

        Never materialises anything: sources and lazy source-backed workload
        views answer from their length *metadata* (``None`` when unknown or
        unbounded) — ``len()`` on a lazy view would fall back to loading
        every pair, which is exactly what the streaming stack must not do.
        """
        if isinstance(workload, PairSource):
            return workload.length
        if isinstance(workload, Workload) and not workload.is_materialized:
            return workload.source.length if workload.source is not None else None
        try:
            return len(workload)
        except TypeError:
            return None

    def analyse_batches(
        self,
        workload: Workload | PairSource,
        batch_size: int | None = None,
        explain_top: int = 0,
        workers: int | None = None,
        execution: ExecutionConfig | Mapping[str, Any] | None = None,
    ) -> Iterator[RiskReport]:
        """Stream :class:`RiskReport` chunks of at most ``batch_size`` pairs.

        Memory stays bounded by the batch size instead of the workload size,
        which is how large workloads should be analysed.  Accepts an eager
        :class:`Workload`, a lazy source-backed workload view, or a
        :class:`~repro.data.sources.PairSource` directly — streamed sources
        are never fully materialised.  Rankings, AUROC and explanations are
        per-chunk.

        ``workers`` / ``execution`` fan the chunks out to a worker pool
        through :class:`~repro.parallel.engine.ParallelScoringEngine`; the
        spec's ``execution`` field supplies the default configuration.
        Reports come back **in source order** and bit-identical to the serial
        path at any worker count and chunk size.  ``batch_size=None`` takes
        the execution config's ``chunk_size`` (1024 when unset).
        """
        self._check_fitted()
        config = self._resolve_execution(workers, execution)
        if batch_size is None:
            batch_size = config.resolve_chunk_size(1024)
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        # Only worth looking up when a pool is actually possible; with one
        # worker the backend is serial whatever the length says.
        length_hint = None if config.workers <= 1 else self._length_hint(workload)
        if config.resolve_backend(length_hint) == "serial":
            self.warm_kernel()
            for chunk in workload.iter_chunks(batch_size):
                if not chunk:  # defensive: custom sources may emit empty chunks
                    continue
                yield self._report(chunk, explain_top=explain_top)
            return
        # Imported lazily: repro.parallel.engine rebuilds pipelines through
        # this module, so the import must not be circular at module level.
        from ..parallel.engine import ParallelScoringEngine

        with ParallelScoringEngine(self, config) as engine:
            for chunk, scores in engine.map_chunks(
                workload.iter_chunks(batch_size),
                explain_top=explain_top,
                length_hint=length_hint,
            ):
                yield self._report_from_scores(chunk, scores)

    def explain_pair(self, pair: RecordPair, top_k: int | None = None) -> list[FeatureExplanation]:
        """Explain a single pair's risk in terms of the rules covering it."""
        self._check_fitted()
        matrix, probabilities, _ = self._classify_pairs([pair])
        return self.risk_model.explain(matrix[0], float(probabilities[0]), top_k=top_k)

    def explain_pairs(
        self, pairs: list[RecordPair], top_rules: int | None = None
    ) -> list[PairRiskExplanation]:
        """Decision-level explanations for a batch of pairs.

        One :class:`~repro.risk.model.PairRiskExplanation` per pair, aligned
        with the input order: fired rules with weight shares, the aggregated
        equivalence distribution, its θ-confidence probability interval and
        the risk score (bit-identical to what :meth:`score_chunk` computes
        for the same pairs).
        """
        self._check_fitted()
        matrix, probabilities, machine_labels = self._classify_pairs(pairs)
        return self.risk_model.explain_pairs(
            matrix, probabilities, machine_labels, top_rules=top_rules
        )

    # ------------------------------------------------------------ persistence
    STATE_KIND = "learn_risk_pipeline"
    STATE_VERSION = 1

    def to_state(self) -> dict:
        """Export the full pipeline (spec, classifier, vectoriser, risk model).

        The layout extends the legacy pipeline state with the ``spec`` field,
        so states written by older library versions keep loading and states
        written here load in older versions (which ignore the spec).
        """
        self._check_fitted()
        tree_config = getattr(self.feature_generator, "tree_config", None)
        return component_state(self.STATE_KIND, self.STATE_VERSION, {
            "spec": self.spec.to_dict(),
            "classifier": self.classifier.to_state(),
            "tree_config": None if tree_config is None else asdict(tree_config),
            "training_config": asdict(self.training_config),
            "risk_metric": self.spec.risk_metric,
            "seed": self.spec.seed,
            "vectorizer": self.vectorizer.to_state(),
            # The vectoriser is shared with the risk features; store it once
            # at the pipeline level and re-wire the sharing on load.
            "risk_model": self.risk_model.to_state(include_vectorizer=False),
        })

    @classmethod
    def _parts_from_state(cls, state: dict) -> _PipelineStateParts:
        """Reconstruct the shared pieces of a saved pipeline state."""
        state = require_state(state, cls.STATE_KIND, cls.STATE_VERSION)
        classifier = classifier_from_state(state_field(state, "classifier", cls.STATE_KIND))
        training_config = dataclass_from_dict(
            TrainingConfig, state_field(state, "training_config", cls.STATE_KIND)
        )
        tree_config_values = state.get("tree_config")
        tree_config = (
            None if tree_config_values is None
            else dataclass_from_dict(OneSidedTreeConfig, tree_config_values)
        )
        spec_values = state.get("spec")
        if spec_values is not None:
            spec = PipelineSpec.from_dict(spec_values)
        else:
            # Legacy state (pre-spec): reconstruct a faithful spec from the
            # stored components, not the library defaults — the spec ends up
            # in spec.json sidecars and `inspect` output and must describe
            # what was actually saved.
            spec = PipelineSpec(
                classifier=component_spec_for_classifier(classifier),
                risk_features=ComponentSpec(
                    "onesided_tree",
                    {} if tree_config is None else {"tree": asdict(tree_config)},
                ),
                risk_metric=str(state.get("risk_metric", "var")),
                training=asdict(training_config),
                seed=int(state.get("seed", 0)),
            )
        vectorizer = PairVectorizer.from_state(
            state_field(state, "vectorizer", cls.STATE_KIND)
        )
        # Share the single loaded vectoriser with the risk features, mirroring
        # the object graph fit() builds.
        risk_model = LearnRiskModel.from_state(
            state_field(state, "risk_model", cls.STATE_KIND), vectorizer=vectorizer
        )
        return _PipelineStateParts(
            spec=spec,
            classifier=classifier,
            training_config=training_config,
            tree_config=tree_config,
            vectorizer=vectorizer,
            risk_model=risk_model,
        )

    def _attach_fitted_state(self, parts: _PipelineStateParts) -> None:
        """Wire the loaded fitted components into this pipeline."""
        self.vectorizer = parts.vectorizer
        self._vectorizer_injected = True
        self.risk_model = parts.risk_model
        self.risk_features = parts.risk_model.features
        if parts.risk_model.config == self.training_config:
            # fit() shares one TrainingConfig between pipeline and risk model;
            # restore that sharing instead of keeping two equal copies.
            parts.risk_model.config = self.training_config
        self._fitted = True

    @classmethod
    def from_state(cls, state: dict) -> "StagedPipeline":
        """Rebuild a fitted staged pipeline written by :meth:`to_state`."""
        parts = cls._parts_from_state(state)
        try:
            generator = create_risk_feature_generator(
                parts.spec.risk_features.kind,
                parts.spec.risk_features.params,
                parts.spec.seed,
            )
        except ConfigurationError:
            # The spec names a generator that is not registered in this
            # process (a custom component, or a legacy state); fall back to
            # the stored tree config so loaded pipelines stay usable.
            generator = RiskFeatureGenerator(tree_config=parts.tree_config)
        pipeline = cls(
            parts.spec,
            classifier=parts.classifier,
            # Injecting the restored vectoriser also skips the registry lookup
            # of the spec's vectorizer kind: a model saved with a custom
            # vectoriser must load without that factory being re-registered
            # (the fitted instance is fully restored from state).
            vectorizer=parts.vectorizer,
            feature_generator=generator,
            training_config=parts.training_config,
        )
        pipeline._attach_fitted_state(parts)
        return pipeline


def build_pipeline(spec: PipelineSpec | Mapping[str, Any] | str | None = None) -> StagedPipeline:
    """Assemble a :class:`StagedPipeline` from a declarative spec.

    Accepts a :class:`PipelineSpec`, a mapping in its ``to_dict`` layout, a
    JSON document, or ``None`` for the default configuration.  Every component
    is resolved through the registries, so the spec fails fast on unknown keys.
    """
    if isinstance(spec, str):
        spec = PipelineSpec.from_json(spec)
    elif spec is None:
        spec = PipelineSpec()
    elif not isinstance(spec, PipelineSpec):
        spec = PipelineSpec.from_dict(spec)
    spec.validate(require_components=True)
    return StagedPipeline(spec)
