"""String-keyed component registries of the composable pipeline API.

A :class:`PipelineSpec` names its components by string keys (``"mlp"``,
``"onesided_tree"``, ``"basic"``, ``"var"``); the registries in this module map
those keys to factories so that new classifiers, vectorisers, risk-feature
generators and risk metrics plug in through registration instead of edits to
core code::

    from repro.compose import register_classifier

    @register_classifier("always-half")
    def build_always_half(seed: int = 0):
        return AlwaysHalfClassifier()

Factory protocols
-----------------
classifier
    ``factory(**params) -> BaseClassifier``.  When the factory accepts a
    ``seed`` parameter and the spec params do not set one, the spec's seed is
    injected, so one spec-level seed drives every seeded component.
vectorizer
    ``factory(schema, **params) -> PairVectorizer``; called lazily at
    ``fit_vectorizer`` time because the schema comes from the training data.
risk_features
    ``factory(**params) -> RiskFeatureGenerator`` (or any object with the same
    ``generate(workload, vectorizer=...)`` protocol).
risk metric
    ``function(distribution, machine_labels, *, theta) -> np.ndarray``; risk
    metrics live in the core registry of :mod:`repro.risk.metrics`, re-exported
    here so ``repro.compose`` is the one-stop registration surface.
pair source
    ``factory(**params) -> PairSource`` (see :mod:`repro.data.sources`), so a
    :class:`PipelineSpec` can name its data backend (``"csv"``, ``"dataset"``,
    ``"generator"``, ``"sharded"``, ``"blocked"``) and the whole stack can
    stream pairs out-of-core from configuration alone.  The ``"blocked"``
    backend (see :mod:`repro.blocking`) generates its candidates on the fly
    from a raw record corpus instead of reading a pre-blocked pair list.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Mapping

from ..classifiers import (
    BootstrapEnsemble,
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    MLPClassifier,
    RandomForestClassifier,
)
from ..classifiers.base import BaseClassifier
from ..data.schema import Schema
from ..data.sources import (
    CsvPairSource,
    GeneratorSource,
    InMemorySource,
    PairSource,
    ShardedSource,
)
from ..exceptions import ConfigurationError
from ..features.vectorizer import PairVectorizer
from ..registry import ComponentRegistry
from ..risk.feature_generation import RiskFeatureGenerator
from ..risk.metrics import (  # noqa: F401 — re-exported registration surface
    register_risk_metric,
    registered_risk_metrics,
    resolve_risk_metric,
)
from ..risk.onesided_tree import OneSidedTreeConfig
from ..serialization import dataclass_from_dict


#: Registry of machine-classifier factories (``factory(**params)``).
CLASSIFIERS = ComponentRegistry("classifier")
#: Registry of vectoriser factories (``factory(schema, **params)``).
VECTORIZERS = ComponentRegistry("vectorizer")
#: Registry of risk-feature-generator factories (``factory(**params)``).
RISK_FEATURE_GENERATORS = ComponentRegistry("risk feature generator")
#: Registry of pair-source factories (``factory(**params) -> PairSource``).
PAIR_SOURCES = ComponentRegistry("pair source")


def register_classifier(
    key: str, factory: Callable[..., BaseClassifier] | None = None, *, overwrite: bool = False
) -> Callable[..., Any]:
    """Register a classifier factory under ``key`` (usable as a decorator)."""
    return CLASSIFIERS.register(key, factory, overwrite=overwrite)


def register_vectorizer(
    key: str, factory: Callable[..., PairVectorizer] | None = None, *, overwrite: bool = False
) -> Callable[..., Any]:
    """Register a vectoriser factory under ``key`` (usable as a decorator)."""
    return VECTORIZERS.register(key, factory, overwrite=overwrite)


def register_risk_feature_generator(
    key: str, factory: Callable[..., Any] | None = None, *, overwrite: bool = False
) -> Callable[..., Any]:
    """Register a risk-feature-generator factory under ``key`` (usable as a decorator)."""
    return RISK_FEATURE_GENERATORS.register(key, factory, overwrite=overwrite)


def registered_classifiers() -> list[str]:
    """Registered classifier keys, sorted."""
    return CLASSIFIERS.keys()


def registered_vectorizers() -> list[str]:
    """Registered vectoriser keys, sorted."""
    return VECTORIZERS.keys()


def register_source(
    key: str, factory: Callable[..., PairSource] | None = None, *, overwrite: bool = False
) -> Callable[..., Any]:
    """Register a pair-source factory under ``key`` (usable as a decorator)."""
    return PAIR_SOURCES.register(key, factory, overwrite=overwrite)


def registered_risk_feature_generators() -> list[str]:
    """Registered risk-feature-generator keys, sorted."""
    return RISK_FEATURE_GENERATORS.keys()


def registered_sources() -> list[str]:
    """Registered pair-source keys, sorted."""
    return PAIR_SOURCES.keys()


def _accepts_parameter(factory: Callable[..., Any], name: str) -> bool:
    """Whether ``factory`` accepts a keyword parameter called ``name``."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == name and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def create_classifier(kind: str, params: Mapping[str, Any], seed: int = 0) -> BaseClassifier:
    """Build a classifier from its registry key, injecting the spec seed.

    ``seed`` is only injected when the factory accepts one and ``params`` does
    not already pin it, so unseeded custom factories keep working.
    """
    params = dict(params)
    if "seed" not in params and _accepts_parameter(CLASSIFIERS.get(kind), "seed"):
        params["seed"] = seed
    classifier = CLASSIFIERS.create(kind, **params)
    if not isinstance(classifier, BaseClassifier):
        raise ConfigurationError(
            f"classifier factory {kind!r} returned {type(classifier).__name__}, "
            f"expected a BaseClassifier"
        )
    return classifier


def create_vectorizer(kind: str, schema: Schema, params: Mapping[str, Any]) -> PairVectorizer:
    """Build a vectoriser for ``schema`` from its registry key."""
    return VECTORIZERS.create(kind, schema, **dict(params))


def create_risk_feature_generator(kind: str, params: Mapping[str, Any], seed: int = 0) -> Any:
    """Build a risk-feature generator from its registry key (seed-injected like classifiers)."""
    params = dict(params)
    if "seed" not in params and _accepts_parameter(RISK_FEATURE_GENERATORS.get(kind), "seed"):
        params["seed"] = seed
    return RISK_FEATURE_GENERATORS.create(kind, **params)


def create_source(kind: str, params: Mapping[str, Any], seed: int = 0) -> PairSource:
    """Build a pair source from its registry key (seed-injected like classifiers)."""
    params = dict(params)
    if "seed" not in params and _accepts_parameter(PAIR_SOURCES.get(kind), "seed"):
        params["seed"] = seed
    source = PAIR_SOURCES.create(kind, **params)
    if not isinstance(source, PairSource):
        raise ConfigurationError(
            f"pair-source factory {kind!r} returned {type(source).__name__}, "
            f"expected a PairSource"
        )
    return source


# ------------------------------------------------------------------ built-ins
register_classifier("mlp", MLPClassifier)
register_classifier("logistic", LogisticRegressionClassifier)
register_classifier("tree", DecisionTreeClassifier)
register_classifier("forest", RandomForestClassifier)
register_classifier("ensemble", BootstrapEnsemble)


@register_vectorizer("basic")
def build_basic_vectorizer(schema: Schema, kinds: list[str] | None = None) -> PairVectorizer:
    """All basic metrics applicable to the schema; ``kinds`` optionally filters
    to ``"similarity"`` and/or ``"difference"`` metrics."""
    vectorizer = PairVectorizer(schema)
    if kinds is not None:
        wanted = set(kinds)
        known = {spec.kind for spec in vectorizer.metrics}
        unknown = wanted - known
        if unknown:
            raise ConfigurationError(
                f"unknown metric kinds {sorted(unknown)}; available: {sorted(known)}"
            )
        vectorizer = PairVectorizer(
            schema, metrics=[spec for spec in vectorizer.metrics if spec.kind in wanted]
        )
    return vectorizer


@register_source("csv")
def build_csv_source(
    directory: str,
    name: str = "workload",
    schema: Mapping[str, Any] | str | None = None,
    pairs_path: str | None = None,
) -> CsvPairSource:
    """Chunked reader over an exported CSV workload (:mod:`repro.data.io` layout).

    ``schema`` is the :meth:`Schema.to_dict` mapping or a path to a JSON file
    in that format; ``pairs_path`` optionally overrides ``<name>_pairs.csv``.
    """
    if schema is None:
        raise ConfigurationError("csv source requires a 'schema' (mapping or JSON file path)")
    return CsvPairSource(directory, name, schema, pairs_path=pairs_path)


@register_source("dataset")
def build_dataset_source(
    name: str = "DS", scale: float = 1.0, seed: int | None = None
) -> InMemorySource:
    """A built-in benchmark-analogue workload served through the source protocol."""
    from ..data.datasets import load_dataset

    return InMemorySource(load_dataset(name, scale=scale, seed=seed))


@register_source("generator")
def build_generator_source(
    domain: str = "bibliographic",
    config: Mapping[str, Any] | None = None,
    name: str = "synthetic",
    max_pairs: int | None = None,
    seed: int = 0,
) -> GeneratorSource:
    """An (optionally unbounded) synthetic pair stream.

    ``config`` holds :class:`~repro.data.generators.GenerationConfig` field
    overrides; omitted fields keep the generator defaults.
    """
    from ..data.generators import GenerationConfig

    generation_config = None
    if config is not None:
        generation_config = dataclass_from_dict(GenerationConfig, config)
    return GeneratorSource(
        domain, config=generation_config, name=name, max_pairs=max_pairs, seed=seed
    )


@register_source("sharded")
def build_sharded_source(
    sources: list[Mapping[str, Any]] | None = None,
    interleave: bool = False,
    name: str | None = None,
    seed: int = 0,
) -> ShardedSource:
    """Concatenate/interleave child sources, each named by its own spec.

    ``sources`` is a list of ``{"kind": ..., "params": {...}}`` component
    specs resolved recursively through this registry.
    """
    from .spec import ComponentSpec

    if not sources:
        raise ConfigurationError("sharded source requires a non-empty 'sources' list")
    children = []
    for entry in sources:
        child_spec = ComponentSpec.coerce(entry, "pair source")
        children.append(create_source(child_spec.kind, child_spec.params, seed))
    return ShardedSource(children, interleave=interleave, name=name)


@register_source("blocked")
def build_blocked_source(
    corpus: Mapping[str, Any] | None = None,
    blockers: list[Mapping[str, Any]] | None = None,
    ensure_matches: bool = True,
    name: str | None = None,
    seed: int = 0,
) -> PairSource:
    """Candidate pairs blocked on the fly from a raw record corpus.

    ``corpus`` is a ``{"kind": ..., **params}`` spec resolved through
    :data:`repro.blocking.CORPORA` (``"csv"``, ``"generator"``, ``"dataset"``)
    and ``blockers`` a non-empty list of ``{"kind": ..., "params": {...}}``
    specs resolved through :data:`repro.blocking.BLOCKERS` (``"inverted"``,
    ``"minhash"``, ``"sorted_window"``).  The result streams in bounded
    memory: no candidate-pair list is ever materialised.
    """
    from ..blocking import BlockingPairSource, create_blocker, create_corpus

    if not corpus:
        raise ConfigurationError("blocked source requires a 'corpus' spec")
    if not blockers:
        raise ConfigurationError("blocked source requires a non-empty 'blockers' list")
    return BlockingPairSource(
        create_corpus(corpus, seed=seed),
        [create_blocker(entry, seed=seed) for entry in blockers],
        ensure_matches=ensure_matches,
        name=name,
    )


@register_risk_feature_generator("onesided_tree")
def build_onesided_tree_generator(
    tree: Mapping[str, Any] | None = None,
    min_rule_coverage: int = 5,
    expectation_smoothing: float = 1.0,
) -> RiskFeatureGenerator:
    """The paper's one-sided decision-tree rule generator.

    ``tree`` holds :class:`OneSidedTreeConfig` fields (``max_depth``,
    ``min_support``, ``lam``, ...); unknown field names are rejected.
    """
    tree_config = None
    if tree is not None:
        import dataclasses

        known = {field.name for field in dataclasses.fields(OneSidedTreeConfig)}
        unknown = set(tree) - known
        if unknown:
            raise ConfigurationError(
                f"unknown one-sided tree parameters {sorted(unknown)}; "
                f"known parameters: {sorted(known)}"
            )
        tree_config = dataclass_from_dict(OneSidedTreeConfig, tree)
    return RiskFeatureGenerator(
        tree_config=tree_config,
        min_rule_coverage=min_rule_coverage,
        expectation_smoothing=expectation_smoothing,
    )
