"""High-level workload-oriented API.

:class:`LearnRiskPipeline` wraps the full LearnRisk workflow — vectorisation,
classifier training, risk-feature generation, risk-model training and scoring —
behind a small sklearn-style interface operating directly on
:class:`~repro.data.workload.Workload` objects.  Since the ``repro.compose``
redesign it is a thin backwards-compatible facade over
:class:`~repro.compose.staged.StagedPipeline`: the staged protocol
(``fit_vectorizer`` → ``fit_classifier`` → ``generate_risk_features`` →
``fit_risk_model``), incremental ``refit_risk_model`` and streaming
``analyse_batches`` are all inherited, while this class keeps the classic
constructor and the monolithic ``fit(train, validation)`` entry point.

Example
-------
>>> from repro.data import load_dataset, split_workload
>>> from repro.pipeline import LearnRiskPipeline
>>> workload = load_dataset("DS", scale=0.3)
>>> split = split_workload(workload, ratio=(3, 2, 5), seed=0)
>>> pipeline = LearnRiskPipeline()
>>> pipeline.fit(split.train, split.validation)
LearnRiskPipeline(...)
>>> report = pipeline.analyse(split.test)
>>> report.auroc  # doctest: +SKIP
0.95
"""

from __future__ import annotations

from dataclasses import asdict

from .classifiers.base import BaseClassifier
from .compose.spec import ComponentSpec, PipelineSpec, component_spec_for_classifier
from .compose.staged import RiskReport, StagedPipeline
from .evaluation.experiment import default_classifier_factory
from .risk.feature_generation import RiskFeatureGenerator
from .risk.onesided_tree import OneSidedTreeConfig
from .risk.training import TrainingConfig

__all__ = ["LearnRiskPipeline", "RiskReport"]


class LearnRiskPipeline(StagedPipeline):
    """End-to-end LearnRisk: classifier + risk features + learnable risk model.

    Parameters
    ----------
    classifier:
        The machine classifier; defaults to the MLP DeepMatcher substitute.
    tree_config:
        One-sided rule-generation configuration.
    training_config:
        Risk-model training configuration (VaR confidence, epochs, ...).
    risk_metric:
        Name of a registered risk metric — ``"var"`` (default), ``"cvar"``,
        ``"expectation"``, or anything added through
        :func:`repro.compose.register_risk_metric`.  Validated eagerly: an
        unknown name raises :class:`ValueError` here, not during training.
    seed:
        Seed forwarded to the default classifier.  (Unlike the spec-driven
        path, a default-constructed ``TrainingConfig`` keeps its own seed,
        preserving the legacy fitting behaviour bit for bit.)
    """

    def __init__(
        self,
        classifier: BaseClassifier | None = None,
        tree_config: OneSidedTreeConfig | None = None,
        training_config: TrainingConfig | None = None,
        risk_metric: str = "var",
        seed: int = 0,
    ) -> None:
        classifier = classifier or default_classifier_factory(seed)
        training_config = training_config or TrainingConfig()
        spec = PipelineSpec(
            # A registry-valid description of the instance, so the spec.json
            # sidecar written at save time can re-create this configuration.
            classifier=component_spec_for_classifier(classifier),
            risk_features=ComponentSpec(
                "onesided_tree",
                {} if tree_config is None else {"tree": asdict(tree_config)},
            ),
            risk_metric=risk_metric,
            training=asdict(training_config),
            seed=seed,
        )
        super().__init__(
            spec,
            classifier=classifier,
            feature_generator=RiskFeatureGenerator(tree_config=tree_config),
            training_config=training_config,
        )
        self.tree_config = tree_config

    # Legacy attribute views over the spec -----------------------------------
    @property
    def risk_metric(self) -> str:
        """The configured risk-metric name (lives in the spec)."""
        return self.spec.risk_metric

    @property
    def seed(self) -> int:
        """The pipeline seed (lives in the spec)."""
        return self.spec.seed

    # ------------------------------------------------------------ persistence
    @classmethod
    def from_state(cls, state: dict) -> "LearnRiskPipeline":
        """Rebuild a fitted pipeline written by :meth:`to_state`."""
        parts = cls._parts_from_state(state)
        pipeline = cls(
            classifier=parts.classifier,
            tree_config=parts.tree_config,
            training_config=parts.training_config,
            risk_metric=parts.spec.risk_metric,
            seed=parts.spec.seed,
        )
        # Keep the full saved spec (decision threshold, component params)
        # rather than the reconstruction the legacy constructor derived — and
        # re-derive the spec-driven defaults that __init__ read off the
        # reconstruction, like the execution config for multi-worker scoring.
        pipeline.spec = parts.spec
        pipeline.execution = parts.spec.execution
        pipeline._attach_fitted_state(parts)
        return pipeline
