"""High-level workload-oriented API.

:class:`LearnRiskPipeline` wraps the full LearnRisk workflow — vectorisation,
classifier training, risk-feature generation, risk-model training and scoring —
behind a small sklearn-style interface operating directly on
:class:`~repro.data.workload.Workload` objects.  It is the entry point the
examples and most downstream users interact with; the lower-level pieces remain
available for custom setups.

Example
-------
>>> from repro.data import load_dataset, split_workload
>>> from repro.pipeline import LearnRiskPipeline
>>> workload = load_dataset("DS", scale=0.3)
>>> split = split_workload(workload, ratio=(3, 2, 5), seed=0)
>>> pipeline = LearnRiskPipeline()
>>> pipeline.fit(split.train, split.validation)
LearnRiskPipeline(...)
>>> report = pipeline.analyse(split.test)
>>> report.auroc  # doctest: +SKIP
0.95
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from .classifiers.base import BaseClassifier, classifier_from_state
from .data.records import RecordPair
from .data.workload import Workload
from .evaluation.experiment import default_classifier_factory
from .evaluation.roc import auroc_score, mislabel_indicator
from .exceptions import NotFittedError
from .features.vectorizer import PairVectorizer
from .risk.feature_generation import GeneratedRiskFeatures, RiskFeatureGenerator
from .risk.model import FeatureExplanation, LearnRiskModel
from .risk.onesided_tree import OneSidedTreeConfig
from .risk.training import TrainingConfig
from .serialization import (
    component_state,
    dataclass_from_dict,
    require_state,
    state_field,
)


@dataclass
class RiskReport:
    """The outcome of analysing a workload with a fitted pipeline."""

    pairs: list[RecordPair]
    machine_probabilities: np.ndarray
    machine_labels: np.ndarray
    risk_scores: np.ndarray
    ranking: np.ndarray
    auroc: float | None = None
    explanations: dict[int, list[FeatureExplanation]] = field(default_factory=dict)

    def top_risky(self, k: int = 10) -> list[tuple[RecordPair, float]]:
        """The ``k`` riskiest pairs with their scores, most risky first."""
        top = self.ranking[:k]
        return [(self.pairs[int(index)], float(self.risk_scores[int(index)])) for index in top]


class LearnRiskPipeline:
    """End-to-end LearnRisk: classifier + risk features + learnable risk model.

    Parameters
    ----------
    classifier:
        The machine classifier; defaults to the MLP DeepMatcher substitute.
    tree_config:
        One-sided rule-generation configuration.
    training_config:
        Risk-model training configuration (VaR confidence, epochs, ...).
    risk_metric:
        ``"var"`` (default), ``"cvar"`` or ``"expectation"``.
    seed:
        Seed forwarded to the default classifier.
    """

    def __init__(
        self,
        classifier: BaseClassifier | None = None,
        tree_config: OneSidedTreeConfig | None = None,
        training_config: TrainingConfig | None = None,
        risk_metric: str = "var",
        seed: int = 0,
    ) -> None:
        self.classifier = classifier or default_classifier_factory(seed)
        self.tree_config = tree_config
        self.training_config = training_config or TrainingConfig()
        self.risk_metric = risk_metric
        self.seed = seed
        self.vectorizer: PairVectorizer | None = None
        self.risk_features: GeneratedRiskFeatures | None = None
        self.risk_model: LearnRiskModel | None = None
        self._fitted = False

    # ------------------------------------------------------------------- fit
    def fit(self, train: Workload, validation: Workload) -> "LearnRiskPipeline":
        """Train the classifier on ``train`` and the risk model on ``validation``."""
        self.vectorizer = PairVectorizer(train.left_table.schema)
        self.vectorizer.fit(train.left_table, train.right_table)

        train_features = self.vectorizer.transform(train.pairs)
        train_labels = train.labels()
        self.classifier.fit(train_features, train_labels)

        generator = RiskFeatureGenerator(tree_config=self.tree_config)
        self.risk_features = generator.generate(train, vectorizer=self.vectorizer)
        self.risk_model = LearnRiskModel(
            self.risk_features, config=self.training_config, risk_metric=self.risk_metric
        )

        validation_features = self.vectorizer.transform(validation.pairs)
        validation_probabilities = self.classifier.predict_proba(validation_features)
        validation_machine_labels = (validation_probabilities >= 0.5).astype(int)
        self.risk_model.fit(
            validation_features,
            validation_probabilities,
            validation_machine_labels,
            validation.labels(),
        )
        self._fitted = True
        return self

    @property
    def is_fitted(self) -> bool:
        """``True`` once :meth:`fit` has completed (or a fitted state was loaded)."""
        return self._fitted

    @property
    def ready(self) -> bool:
        """Alias of :attr:`is_fitted`, the vocabulary used by the serving layer."""
        return self.is_fitted

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("LearnRiskPipeline is not fitted yet")

    # ----------------------------------------------------------------- label
    def label(self, workload: Workload) -> tuple[np.ndarray, np.ndarray]:
        """Label a workload with the classifier: ``(probabilities, hard labels)``."""
        self._check_fitted()
        features = self.vectorizer.transform(workload.pairs)
        probabilities = self.classifier.predict_proba(features)
        return probabilities, (probabilities >= 0.5).astype(int)

    # --------------------------------------------------------------- analyse
    def analyse(
        self, workload: Workload, explain_top: int = 0
    ) -> RiskReport:
        """Label ``workload`` and rank its pairs by mislabeling risk.

        When the workload carries ground truth the report includes the AUROC
        of the risk ranking; ``explain_top`` attaches rule-level explanations
        for the given number of riskiest pairs.
        """
        self._check_fitted()
        features = self.vectorizer.transform(workload.pairs)
        probabilities = self.classifier.predict_proba(features)
        machine_labels = (probabilities >= 0.5).astype(int)
        risk_scores = self.risk_model.score(features, probabilities, machine_labels)
        ranking = np.argsort(-risk_scores, kind="stable")

        # AUROC is only defined for labeled workloads on which the classifier
        # made some (but not only) mistakes; check explicitly instead of
        # swallowing exceptions, so genuine scoring bugs surface.
        auroc = None
        if workload.is_labeled and len(workload) > 0:
            ground_truth = workload.labels()
            risk_labels = mislabel_indicator(machine_labels, ground_truth)
            if 0 < risk_labels.sum() < len(risk_labels):
                auroc = auroc_score(risk_labels, risk_scores)

        explanations: dict[int, list[FeatureExplanation]] = {}
        for index in ranking[:explain_top]:
            explanations[int(index)] = self.risk_model.explain(
                features[int(index)], float(probabilities[int(index)])
            )
        return RiskReport(
            pairs=list(workload.pairs),
            machine_probabilities=probabilities,
            machine_labels=machine_labels,
            risk_scores=risk_scores,
            ranking=ranking,
            auroc=auroc,
            explanations=explanations,
        )

    def explain_pair(self, pair: RecordPair, top_k: int | None = None) -> list[FeatureExplanation]:
        """Explain a single pair's risk in terms of the rules covering it."""
        self._check_fitted()
        features = self.vectorizer.transform([pair])
        probability = float(self.classifier.predict_proba(features)[0])
        return self.risk_model.explain(features[0], probability, top_k=top_k)

    # ------------------------------------------------------------ persistence
    STATE_KIND = "learn_risk_pipeline"
    STATE_VERSION = 1

    def to_state(self) -> dict:
        """Export the full pipeline (classifier, vectoriser, risk model) as a state dict.

        Use :func:`repro.serve.persistence.save_pipeline` to write the state to
        disk as JSON + npz; this method only builds the in-memory structure.
        """
        self._check_fitted()
        return component_state(self.STATE_KIND, self.STATE_VERSION, {
            "classifier": self.classifier.to_state(),
            "tree_config": None if self.tree_config is None else asdict(self.tree_config),
            "training_config": asdict(self.training_config),
            "risk_metric": self.risk_metric,
            "seed": self.seed,
            "vectorizer": self.vectorizer.to_state(),
            # The vectoriser is shared with the risk features; store it once
            # at the pipeline level and re-wire the sharing on load.
            "risk_model": self.risk_model.to_state(include_vectorizer=False),
        })

    @classmethod
    def from_state(cls, state: dict) -> "LearnRiskPipeline":
        """Rebuild a fitted pipeline written by :meth:`to_state`."""
        state = require_state(state, cls.STATE_KIND, cls.STATE_VERSION)
        tree_config = state.get("tree_config")
        pipeline = cls(
            classifier=classifier_from_state(state_field(state, "classifier", cls.STATE_KIND)),
            tree_config=(
                None if tree_config is None
                else dataclass_from_dict(OneSidedTreeConfig, tree_config)
            ),
            training_config=dataclass_from_dict(
                TrainingConfig, state_field(state, "training_config", cls.STATE_KIND)
            ),
            risk_metric=str(state.get("risk_metric", "var")),
            seed=int(state.get("seed", 0)),
        )
        pipeline.vectorizer = PairVectorizer.from_state(
            state_field(state, "vectorizer", cls.STATE_KIND)
        )
        # Share the single loaded vectoriser with the risk features, mirroring
        # the object graph fit() builds.
        pipeline.risk_model = LearnRiskModel.from_state(
            state_field(state, "risk_model", cls.STATE_KIND), vectorizer=pipeline.vectorizer
        )
        pipeline.risk_features = pipeline.risk_model.features
        if pipeline.risk_model.config == pipeline.training_config:
            # fit() shares one TrainingConfig between pipeline and risk model;
            # restore that sharing instead of keeping two equal copies.
            pipeline.risk_model.config = pipeline.training_config
        pipeline._fitted = True
        return pipeline
