"""Dependency-free observability: metrics, spans and explain telemetry.

Public surface:

* :class:`MetricsRegistry` — thread-safe counters / gauges / streaming
  histograms / nested span timings, with JSON snapshot export.
* :class:`StreamingHistogram` — bounded-memory p50/p95/p99 estimates.
* :func:`get_recorder` / :func:`set_recorder` / :func:`use_recorder` — the
  process-global recorder the instrumented library records into; defaults to
  :data:`NULL_RECORDER` so the disabled path costs ~nothing.
* :class:`Stopwatch` — the benchmarks' wall-clock timing primitive.
"""

from .histogram import DEFAULT_GROWTH, SNAPSHOT_QUANTILES, StreamingHistogram
from .registry import (
    NULL_RECORDER,
    SNAPSHOT_VERSION,
    MetricsRegistry,
    NullRecorder,
    Stopwatch,
    get_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "DEFAULT_GROWTH",
    "SNAPSHOT_QUANTILES",
    "SNAPSHOT_VERSION",
    "StreamingHistogram",
    "MetricsRegistry",
    "NullRecorder",
    "NULL_RECORDER",
    "Stopwatch",
    "get_recorder",
    "set_recorder",
    "use_recorder",
]
