"""Streaming histograms: bounded-memory quantile estimates for hot-path timings.

The observability layer must be able to report p50/p95/p99 of quantities it
sees millions of times (batch latencies, span durations, queue depths) without
keeping the observations.  :class:`StreamingHistogram` keeps exact ``count``,
``sum``, ``min`` and ``max`` plus a sparse dict of log-spaced bucket counters,
so memory is O(distinct magnitudes) — a few dozen buckets for any realistic
latency distribution — and a quantile is answered by a cumulative walk over
the sorted buckets.

Accuracy is bounded by construction: consecutive bucket boundaries differ by
``growth`` (default 1.08), and a quantile is reported as the geometric mean of
its bucket's bounds, so the relative error of any quantile is at most
``sqrt(growth) - 1`` (~4% at the default) — tight enough for operator-facing
p95/p99 while staying fully deterministic (no sampling, no RNG).  Non-positive
observations (a zero-duration span, a zero queue depth) share one exact
bucket at value 0.0.

Everything here is dependency-free and single-threaded; thread safety is the
job of the owning :class:`~repro.obs.registry.MetricsRegistry`, which guards
every mutation with its lock.
"""

from __future__ import annotations

import math

#: Ratio between consecutive bucket boundaries.  Relative quantile error is
#: bounded by sqrt(growth) - 1, so 1.08 keeps every reported quantile within
#: ~4% of the exact order statistic.
DEFAULT_GROWTH = 1.08

#: The quantiles every snapshot reports.
SNAPSHOT_QUANTILES = (0.5, 0.95, 0.99)


class StreamingHistogram:
    """A log-bucketed streaming histogram (see module docstring).

    Parameters
    ----------
    growth:
        Ratio between consecutive bucket boundaries; must be > 1.  Smaller
        values trade memory (more buckets) for tighter quantile error.
    """

    __slots__ = ("growth", "_log_growth", "count", "total", "minimum", "maximum",
                 "_buckets", "_nonpositive")

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError(f"histogram growth must be > 1, got {growth}")
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: bucket index -> observation count; bucket b spans
        #: (growth**b, growth**(b+1)].
        self._buckets: dict[int, int] = {}
        #: observations <= 0 (durations and depths are non-negative, so this
        #: is almost always the exact-zero bucket).
        self._nonpositive = 0

    # ---------------------------------------------------------------- recording
    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self._nonpositive += 1
            return
        bucket = math.ceil(math.log(value) / self._log_growth) - 1
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram of the same growth into this one."""
        if other.growth != self.growth:
            raise ValueError("cannot merge histograms with different growth factors")
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self._nonpositive += other._nonpositive
        for bucket, bucket_count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + bucket_count

    # ----------------------------------------------------------------- reading
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q < 1) of everything observed.

        The estimate is the geometric midpoint of the bucket containing the
        target rank, clamped to the exact observed ``[min, max]`` envelope —
        so single-value streams and the extreme quantiles are exact.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        if self.count == 0:
            return 0.0
        # Rank of the target observation, 1-based, matching the "lower"
        # interpolation of an order statistic.
        rank = max(1, math.ceil(q * self.count))
        if rank <= self._nonpositive:
            # All non-positive observations collapse into min(..., 0.0).
            return min(self.minimum, 0.0)
        cumulative = self._nonpositive
        for bucket in sorted(self._buckets):
            cumulative += self._buckets[bucket]
            if cumulative >= rank:
                lower = self.growth ** bucket
                upper = self.growth ** (bucket + 1)
                estimate = math.sqrt(lower * upper)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - rank <= count by construction

    def snapshot(self) -> dict[str, float]:
        """JSON-safe summary: count, sum, mean, min, max and the standard quantiles."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        summary = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for q in SNAPSHOT_QUANTILES:
            summary[f"p{int(q * 100)}"] = self.quantile(q)
        return summary
