"""The metrics registry, span timing contexts and the global recorder.

:class:`MetricsRegistry` is the one mutable surface of :mod:`repro.obs`: a
thread-safe collection of counters, gauges, streaming histograms and nested
span timings with a JSON-safe :meth:`~MetricsRegistry.snapshot`.  Library code
never holds a registry directly — it asks :func:`get_recorder` for the
process-global recorder, which defaults to the :data:`NULL_RECORDER` no-op so
uninstrumented runs pay (almost) nothing:

* ``get_recorder().count(...)`` on the null recorder is one attribute lookup
  and one empty method call;
* ``get_recorder().span(...)`` returns a shared reusable no-op context
  manager — no allocation, no clock read.

Enabling observability is one call (or one ``with`` block)::

    from repro import obs

    registry = obs.MetricsRegistry()
    with obs.use_recorder(registry):
        pipeline.analyse(workload)
    print(registry.to_json())

**Spans** are nested wall-clock timings: ``span("risk_score")`` inside
``span("score_chunk")`` records under the dotted path
``"score_chunk.risk_score"``, with one streaming histogram per distinct path
(per-thread nesting stacks, so concurrent scorers never corrupt each other's
paths).  The clock is injectable (``MetricsRegistry(clock=...)``), which is
how the test suite makes span timings fully deterministic; instrumentation is
read-only with respect to the instrumented computation, so scored outputs are
bit-identical with observability on or off.

The snapshot layout is documented in the README ("Observability &
explainability"); its sections are ``counters``, ``gauges``, ``histograms``,
``spans`` and ``span_totals`` (per-leaf-name rollups of the span tree, the
easy way to read "total vectorize time" regardless of nesting).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Mapping

from .histogram import StreamingHistogram

#: Schema version stamped into every snapshot (bump on layout changes).
SNAPSHOT_VERSION = 1


class Stopwatch:
    """A tiny reusable wall-clock timer (the benchmarks' timing primitive).

    Usable as a context manager or started/stopped explicitly::

        with Stopwatch() as watch:
            work()
        print(watch.seconds)
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.perf_counter
        self._started: float | None = None
        self.seconds = 0.0

    def start(self) -> "Stopwatch":
        self._started = self._clock()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("Stopwatch.stop called before start")
        self.seconds = self._clock() - self._started
        self._started = None
        return self.seconds

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _SpanContext:
    """Reusable context manager for one registry + span name (allocated per call)."""

    __slots__ = ("_registry", "_name", "_start", "_path")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0
        self._path = ""

    def __enter__(self) -> "_SpanContext":
        stack = self._registry._span_stack()
        stack.append(self._name)
        self._path = ".".join(stack)
        self._start = self._registry._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = self._registry._clock() - self._start
        self._registry._span_stack().pop()
        self._registry._observe_span(self._path, elapsed)


class MetricsRegistry:
    """Thread-safe counters, gauges, histograms and span timings.

    Parameters
    ----------
    clock:
        Monotonic clock returning seconds as a float; defaults to
        :func:`time.perf_counter`.  Injectable so tests can drive spans and
        timers deterministically with a fake clock.
    """

    #: Recorder-protocol flag: ``False`` only on the null recorder, so hot
    #: paths can skip *building* expensive metric values entirely.
    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, StreamingHistogram] = {}
        self._span_histograms: dict[str, StreamingHistogram] = {}
        self._local = threading.local()

    # ---------------------------------------------------------------- counters
    def count(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------ transactions
    def apply(
        self,
        counters: Mapping[str, float] | None = None,
        observations: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        gauge_maxima: Mapping[str, float] | None = None,
    ) -> None:
        """Apply several metric updates as one atomic transaction.

        A reader holding a consistent view (:meth:`values` / :meth:`snapshot`)
        sees either none or all of the updates — never a torn subset.  This is
        what keeps multi-metric invariants (``service.pairs_scored`` equals
        the sum of the ``service.batch_size`` histogram, say) true in *every*
        snapshot taken concurrently with writers, not just quiescent ones.

        ``counters`` adds to counters, ``observations`` records one value per
        named histogram, ``gauges`` overwrites, and ``gauge_maxima`` keeps the
        maximum of the current and given value (a high-watermark update).
        """
        with self._lock:
            if counters:
                for name, amount in counters.items():
                    self._counters[name] = self._counters.get(name, 0) + amount
            if observations:
                for name, value in observations.items():
                    histogram = self._histograms.get(name)
                    if histogram is None:
                        histogram = self._histograms[name] = StreamingHistogram()
                    histogram.observe(value)
            if gauges:
                for name, value in gauges.items():
                    self._gauges[name] = float(value)
            if gauge_maxima:
                for name, value in gauge_maxima.items():
                    if float(value) > self._gauges.get(name, 0.0):
                        self._gauges[name] = float(value)

    def values(self) -> tuple[dict[str, float], dict[str, float]]:
        """One consistent ``(counters, gauges)`` copy under a single lock hold.

        The lightweight companion of :meth:`snapshot` for readers that only
        need scalar values: every counter/gauge in the returned dicts comes
        from the same instant, so derived ratios computed from them can never
        mix a pre-update numerator with a post-update denominator.
        """
        with self._lock:
            return dict(self._counters), dict(self._gauges)

    # ------------------------------------------------------------------ gauges
    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    # -------------------------------------------------------------- histograms
    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into streaming histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = StreamingHistogram()
            histogram.observe(value)

    def histogram(self, name: str) -> StreamingHistogram | None:
        """The histogram recorded under ``name`` (``None`` when nothing was)."""
        with self._lock:
            return self._histograms.get(name)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block into histogram ``name`` (flat, not nested)."""
        start = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - start)

    # ------------------------------------------------------------------- spans
    def _span_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _observe_span(self, path: str, elapsed: float) -> None:
        with self._lock:
            histogram = self._span_histograms.get(path)
            if histogram is None:
                histogram = self._span_histograms[path] = StreamingHistogram()
            histogram.observe(elapsed)

    def span(self, name: str) -> _SpanContext:
        """A nested timing context: durations recorded under the dotted span path.

        ``name`` must not contain ``"."`` (the path separator).  Nesting is
        tracked per thread, so concurrent scoring threads each build their own
        correct paths against this one shared registry.
        """
        if "." in name:
            raise ValueError(f"span names must not contain '.', got {name!r}")
        return _SpanContext(self, name)

    def span_seconds(self, path: str) -> float:
        """Total seconds recorded under span ``path`` (0.0 when never entered)."""
        with self._lock:
            histogram = self._span_histograms.get(path)
            return histogram.total if histogram is not None else 0.0

    def span_totals(self) -> dict[str, float]:
        """Total seconds per span *leaf name*, summed across every nesting path.

        ``{"vectorize": 1.2}`` whether vectorisation ran under
        ``"score_chunk.vectorize"``, ``"fit.classifier.vectorize"`` or both —
        the easy way to split cost regardless of call-site nesting.
        """
        with self._lock:
            totals: dict[str, float] = {}
            for path, histogram in self._span_histograms.items():
                leaf = path.rsplit(".", 1)[-1]
                totals[leaf] = totals.get(leaf, 0.0) + histogram.total
            return totals

    # ---------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """A point-in-time JSON-safe export of everything recorded."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {name: h.snapshot() for name, h in self._histograms.items()}
            spans = {path: h.snapshot() for path, h in self._span_histograms.items()}
        totals = self.span_totals()
        return {
            "version": SNAPSHOT_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
            "span_totals": totals,
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str | Path) -> Path:
        """Write the snapshot to ``path`` (parent directories created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def reset(self) -> None:
        """Drop everything recorded so far (span stacks of live threads survive)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._span_histograms.clear()


class _NullContext:
    """The do-nothing context manager shared by every null span/timer."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled recorder: same surface as :class:`MetricsRegistry`, no work.

    Every mutator is an empty method and :meth:`span`/:meth:`timer` return one
    shared no-op context manager, so the instrumented hot paths cost a method
    call when observability is off (guarded by a test in ``tests/obs``).
    """

    enabled = False

    def count(self, name: str, amount: float = 1) -> None:
        return None

    def apply(
        self,
        counters: Mapping[str, float] | None = None,
        observations: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        gauge_maxima: Mapping[str, float] | None = None,
    ) -> None:
        return None

    def values(self) -> tuple[dict[str, float], dict[str, float]]:
        return {}, {}

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def span(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def timer(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def counter_value(self, name: str) -> float:
        return 0

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return default

    def histogram(self, name: str) -> None:
        return None

    def span_seconds(self, path: str) -> float:
        return 0.0

    def span_totals(self) -> dict[str, float]:
        return {}

    def snapshot(self) -> dict:
        return {"version": SNAPSHOT_VERSION, "counters": {}, "gauges": {},
                "histograms": {}, "spans": {}, "span_totals": {}}


#: The process-wide disabled recorder (a singleton; never mutated).
NULL_RECORDER = NullRecorder()

_global_recorder: MetricsRegistry | NullRecorder = NULL_RECORDER


def get_recorder() -> MetricsRegistry | NullRecorder:
    """The process-global recorder the instrumented library code records into."""
    return _global_recorder


def set_recorder(recorder: MetricsRegistry | NullRecorder | None) -> None:
    """Install ``recorder`` globally (``None`` restores the no-op recorder)."""
    global _global_recorder
    _global_recorder = NULL_RECORDER if recorder is None else recorder


@contextmanager
def use_recorder(recorder: MetricsRegistry | NullRecorder) -> Iterator[MetricsRegistry | NullRecorder]:
    """Install ``recorder`` for the duration of the block, then restore."""
    global _global_recorder
    previous = _global_recorder
    _global_recorder = recorder
    try:
        yield recorder
    finally:
        _global_recorder = previous
