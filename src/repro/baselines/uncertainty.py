"""The *Uncertainty* baseline (Mozafari et al., bootstrap ensembles).

Twenty classifiers are trained on bootstrap resamples of the classifier
training data; a pair's equivalence probability is estimated as the fraction of
ensemble members labeling it a match, and the risk is the variance-style score
``p (1 − p)``.  Because the vote fraction takes at most ``n_models + 1``
distinct values, the resulting ROC curves are the highly regular staircases the
paper remarks on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..classifiers.base import BaseClassifier
from ..classifiers.ensemble import BootstrapEnsemble
from .base import BaseRiskScorer, RiskContext


class UncertaintyBaseline(BaseRiskScorer):
    """Risk = ``p (1 − p)`` of the bootstrap-ensemble vote fraction.

    Parameters
    ----------
    n_models:
        Ensemble size (20 in the paper).
    model_factory:
        Factory for the ensemble members; the default lets
        :class:`~repro.classifiers.ensemble.BootstrapEnsemble` choose a fast
        logistic-regression member.
    """

    name = "Uncertainty"

    def __init__(
        self,
        n_models: int = 20,
        model_factory: Callable[[int], BaseClassifier] | None = None,
    ) -> None:
        super().__init__()
        self.n_models = n_models
        self.model_factory = model_factory
        self._ensemble: BootstrapEnsemble | None = None

    def fit(self, context: RiskContext) -> "UncertaintyBaseline":
        self._ensemble = BootstrapEnsemble(
            model_factory=self.model_factory, n_models=self.n_models, seed=context.seed
        )
        self._ensemble.fit(context.train_features, context.train_labels)
        self._fitted = True
        return self

    def score(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        self._check_fitted()
        vote_fraction = self._ensemble.vote_fraction(np.asarray(metric_matrix, dtype=float))
        return vote_fraction * (1.0 - vote_fraction)
