"""The *TrustScore* baseline (Jiang et al., NeurIPS 2018).

Each class is summarised by a set of clusters fitted on the training data in
metric-feature space (the paper uses the DNN's internal representation; our
substitute is the basic-metric vector, standardised).  For a test pair, let
``ρ_Y`` be its distance to the nearest cluster of its *predicted* class and
``ρ_N`` its distance to the nearest cluster of the other class; the trust score
is ``ρ_N / ρ_Y`` (high = trustworthy) and the risk score returned here is its
monotone inverse ``ρ_Y / (ρ_Y + ρ_N)``.

The clustering is a small k-means implemented from scratch (deterministic given
the context seed), with an optional density-based filtering of outlying
training points, following the original paper's α-high-density trimming.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .base import BaseRiskScorer, RiskContext


def kmeans(
    points: np.ndarray, n_clusters: int, seed: int = 0, max_iterations: int = 50
) -> np.ndarray:
    """Plain Lloyd's k-means; returns the cluster centroids.

    Degenerates gracefully when there are fewer points than clusters (every
    point becomes its own centroid).
    """
    points = np.asarray(points, dtype=float)
    if len(points) == 0:
        raise ConfigurationError("kmeans requires at least one point")
    n_clusters = min(n_clusters, len(points))
    rng = np.random.default_rng(seed)
    centroid_indices = rng.choice(len(points), size=n_clusters, replace=False)
    centroids = points[centroid_indices].copy()
    for _ in range(max_iterations):
        distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        assignments = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for cluster in range(n_clusters):
            members = points[assignments == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    return centroids


class TrustScoreBaseline(BaseRiskScorer):
    """Risk from cluster-distance ratios in metric-feature space.

    Parameters
    ----------
    n_clusters:
        Clusters per class.
    density_fraction:
        Fraction of each class's training points kept after trimming the
        points farthest from their class mean (1.0 keeps everything).
    """

    name = "TrustScore"

    def __init__(self, n_clusters: int = 5, density_fraction: float = 0.9) -> None:
        super().__init__()
        if not 0.0 < density_fraction <= 1.0:
            raise ConfigurationError("density_fraction must be in (0, 1]")
        self.n_clusters = n_clusters
        self.density_fraction = density_fraction
        self._centroids: dict[int, np.ndarray] = {}
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None

    def _standardise(self, features: np.ndarray) -> np.ndarray:
        return (features - self._feature_mean) / self._feature_scale

    def fit(self, context: RiskContext) -> "TrustScoreBaseline":
        features = np.asarray(context.train_features, dtype=float)
        labels = np.asarray(context.train_labels, dtype=int)
        self._feature_mean = features.mean(axis=0)
        self._feature_scale = np.maximum(features.std(axis=0), 1e-6)
        standardised = self._standardise(features)

        self._centroids = {}
        for label in (0, 1):
            class_points = standardised[labels == label]
            if len(class_points) == 0:
                # Degenerate training set: represent the absent class far away.
                self._centroids[label] = np.full((1, features.shape[1]), 1e6)
                continue
            if self.density_fraction < 1.0 and len(class_points) > 10:
                center = class_points.mean(axis=0)
                distances = np.linalg.norm(class_points - center, axis=1)
                keep = int(np.ceil(self.density_fraction * len(class_points)))
                class_points = class_points[np.argsort(distances)[:keep]]
            self._centroids[label] = kmeans(class_points, self.n_clusters, seed=context.seed)
        self._fitted = True
        return self

    def _distance_to_class(self, standardised: np.ndarray, label: int) -> np.ndarray:
        centroids = self._centroids[label]
        distances = np.linalg.norm(standardised[:, None, :] - centroids[None, :, :], axis=2)
        return distances.min(axis=1)

    def score(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        self._check_fitted()
        features = np.asarray(metric_matrix, dtype=float)
        machine_labels = np.asarray(machine_labels, dtype=int)
        standardised = self._standardise(features)
        distance_to_match = self._distance_to_class(standardised, 1)
        distance_to_unmatch = self._distance_to_class(standardised, 0)
        same = np.where(machine_labels == 1, distance_to_match, distance_to_unmatch)
        other = np.where(machine_labels == 1, distance_to_unmatch, distance_to_match)
        # Trust = other / same; risk is its bounded monotone inverse.
        return same / np.maximum(same + other, 1e-12)

    def trust_scores(
        self, metric_matrix: np.ndarray, machine_labels: np.ndarray
    ) -> np.ndarray:
        """Return the original (higher-is-better) trust scores ``ρ_N / ρ_Y``."""
        self._check_fitted()
        features = np.asarray(metric_matrix, dtype=float)
        machine_labels = np.asarray(machine_labels, dtype=int)
        standardised = self._standardise(features)
        distance_to_match = self._distance_to_class(standardised, 1)
        distance_to_unmatch = self._distance_to_class(standardised, 0)
        same = np.where(machine_labels == 1, distance_to_match, distance_to_unmatch)
        other = np.where(machine_labels == 1, distance_to_unmatch, distance_to_match)
        return other / np.maximum(same, 1e-12)
