"""Risk-analysis approaches: the paper's baselines plus the LearnRisk adapter."""

from .ambiguity import AmbiguityBaseline
from .base import BaseRiskScorer, RiskContext
from .holoclean import HoloCleanBaseline
from .learnrisk import LearnRiskScorer
from .staticrisk import StaticRiskBaseline
from .trustscore import TrustScoreBaseline, kmeans
from .uncertainty import UncertaintyBaseline


def default_scorers(seed: int = 0) -> list[BaseRiskScorer]:
    """The five approaches of the paper's main comparative study (Figure 9/10)."""
    del seed  # scorers read their seed from the RiskContext at fit time
    return [
        AmbiguityBaseline(),
        UncertaintyBaseline(),
        TrustScoreBaseline(),
        StaticRiskBaseline(),
        LearnRiskScorer(),
    ]


__all__ = [
    "AmbiguityBaseline",
    "BaseRiskScorer",
    "HoloCleanBaseline",
    "LearnRiskScorer",
    "RiskContext",
    "StaticRiskBaseline",
    "TrustScoreBaseline",
    "UncertaintyBaseline",
    "default_scorers",
    "kmeans",
]
