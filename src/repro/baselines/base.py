"""Common interface of the risk-analysis approaches compared in the paper.

Every approach — the four non-learnable baselines, the HoloClean-style rule
model and LearnRisk itself — is exposed as a :class:`BaseRiskScorer` with a
two-step protocol:

* :meth:`BaseRiskScorer.fit` receives a :class:`RiskContext` describing
  everything the paper's experimental setup makes available: the classifier
  training data, the validation data (with classifier outputs and ground
  truth), the fitted classifier and optionally pre-generated risk features.
* :meth:`BaseRiskScorer.score` receives the test pairs' metric matrix,
  classifier probabilities and machine labels, and returns one risk score per
  pair, higher meaning "more likely mislabeled".

The evaluation harness ranks the test pairs by these scores and computes the
ROC/AUROC against the true mislabeled indicator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..classifiers.base import BaseClassifier
from ..exceptions import NotFittedError
from ..risk.feature_generation import GeneratedRiskFeatures


@dataclass
class RiskContext:
    """Everything a risk-analysis approach may use at fit time.

    Attributes
    ----------
    train_features, train_labels:
        The classifier training data (metric matrix and ground truth).
    validation_features, validation_probabilities, validation_machine_labels,
    validation_ground_truth:
        The validation data — classifier outputs, hard labels and ground truth.
        This is the risk-training data for learnable approaches.
    classifier:
        The fitted machine classifier (used e.g. by Uncertainty to mirror its
        configuration when training the bootstrap ensemble).
    risk_features:
        Optionally pre-generated one-sided risk features shared between
        approaches that consume rules (LearnRisk, StaticRisk).
    seed:
        Seed for any internal randomness.
    """

    train_features: np.ndarray
    train_labels: np.ndarray
    validation_features: np.ndarray
    validation_probabilities: np.ndarray
    validation_machine_labels: np.ndarray
    validation_ground_truth: np.ndarray
    classifier: BaseClassifier | None = None
    risk_features: GeneratedRiskFeatures | None = None
    seed: int = 0


class BaseRiskScorer(abc.ABC):
    """Abstract risk scorer: ``fit`` on a :class:`RiskContext`, then ``score`` pairs."""

    #: Display name used in figures, tables and reports.
    name: str = "risk-scorer"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, context: RiskContext) -> "BaseRiskScorer":
        """Prepare the scorer from the available training/validation data."""

    @abc.abstractmethod
    def score(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        """Return one risk score per test pair (higher = more likely mislabeled)."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
