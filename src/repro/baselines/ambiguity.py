"""The *Baseline* approach: classifier-output ambiguity (Hendrycks & Gimpel).

The risk of a pair is simply how ambiguous the classifier's probability output
is: outputs near 0.5 are risky, outputs near 0 or 1 are safe.  The score is
``1 − |2p − 1|`` so that it increases with risk, as required by the scorer
interface.  No training is involved.
"""

from __future__ import annotations

import numpy as np

from .base import BaseRiskScorer, RiskContext


class AmbiguityBaseline(BaseRiskScorer):
    """Risk = ambiguity of the classifier output (the paper's *Baseline*)."""

    name = "Baseline"

    def fit(self, context: RiskContext) -> "AmbiguityBaseline":
        """No training required; kept for interface uniformity."""
        self._fitted = True
        return self

    def score(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        self._check_fitted()
        probabilities = np.asarray(machine_probabilities, dtype=float)
        return 1.0 - np.abs(2.0 * probabilities - 1.0)
