"""The *StaticRisk* baseline (Chen et al. 2018, the paper's reference [14]).

StaticRisk estimates a pair's equivalence-probability distribution by Bayesian
inference and measures its risk by Conditional Value at Risk.  The prior comes
from the classifier's probability output (a Beta prior with a fixed equivalent
sample size); the evidence comes from the labeled pairs sharing the pair's risk
features: for every one-sided rule covering the pair, the rule's match /
non-match counts on the labeled (classifier-training) data are added as pseudo
observations.  The posterior Beta is approximated by a normal distribution and
the CVaR of the mislabeling loss is the risk score.  Unlike LearnRisk, nothing
is learnable: the counts are used as-is and there are no weights to tune.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..risk.distributions import beta_to_normal
from ..risk.feature_generation import GeneratedRiskFeatures
from ..risk.metrics import conditional_value_at_risk
from ..risk.portfolio import PortfolioDistribution
from .base import BaseRiskScorer, RiskContext


class StaticRiskBaseline(BaseRiskScorer):
    """Bayesian (non-learnable) risk estimation with a CVaR risk metric.

    Parameters
    ----------
    prior_strength:
        Equivalent sample size of the classifier-output Beta prior.
    evidence_scale:
        Multiplier applied to rule evidence counts (1.0 uses raw counts; the
        scale caps the influence of very large rules so the prior is not
        completely washed out, mirroring the sample-based inference of [14]).
    max_evidence:
        Cap on the total pseudo-observation count contributed by rules.
    theta:
        CVaR confidence level.
    """

    name = "StaticRisk"

    def __init__(
        self,
        prior_strength: float = 10.0,
        evidence_scale: float = 1.0,
        max_evidence: float = 200.0,
        theta: float = 0.9,
    ) -> None:
        super().__init__()
        if prior_strength <= 0:
            raise ConfigurationError("prior_strength must be positive")
        if not 0.0 < theta < 1.0:
            raise ConfigurationError("theta must be in (0, 1)")
        self.prior_strength = prior_strength
        self.evidence_scale = evidence_scale
        self.max_evidence = max_evidence
        self.theta = theta
        self._features: GeneratedRiskFeatures | None = None
        self._rule_matches: np.ndarray | None = None
        self._rule_totals: np.ndarray | None = None

    def fit(self, context: RiskContext) -> "StaticRiskBaseline":
        self._features = context.risk_features
        if self._features is None:
            raise ConfigurationError(
                "StaticRiskBaseline requires context.risk_features "
                "(share the GeneratedRiskFeatures produced for LearnRisk)"
            )
        membership = self._features.rule_matrix(np.asarray(context.train_features, dtype=float))
        labels = np.asarray(context.train_labels, dtype=float)
        self._rule_totals = membership.sum(axis=0)
        self._rule_matches = membership.T @ labels
        self._fitted = True
        return self

    def score(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        self._check_fitted()
        metric_matrix = np.asarray(metric_matrix, dtype=float)
        probabilities = np.clip(np.asarray(machine_probabilities, dtype=float), 1e-3, 1.0 - 1e-3)
        machine_labels = np.asarray(machine_labels, dtype=int)
        membership = self._features.rule_matrix(metric_matrix)

        # Prior pseudo-counts from the classifier output.
        prior_alpha = probabilities * self.prior_strength
        prior_beta = (1.0 - probabilities) * self.prior_strength

        # Evidence pseudo-counts from the covering rules' labeled samples.
        evidence_matches = membership @ (self._rule_matches * self.evidence_scale)
        evidence_totals = membership @ (self._rule_totals * self.evidence_scale)
        over_cap = evidence_totals > self.max_evidence
        if np.any(over_cap):
            shrink = np.ones_like(evidence_totals)
            shrink[over_cap] = self.max_evidence / evidence_totals[over_cap]
            evidence_matches = evidence_matches * shrink
            evidence_totals = evidence_totals * shrink

        posterior_alpha = prior_alpha + evidence_matches
        posterior_beta = prior_beta + (evidence_totals - evidence_matches)

        means = np.empty(len(probabilities), dtype=float)
        variances = np.empty(len(probabilities), dtype=float)
        for index, (alpha, beta) in enumerate(zip(posterior_alpha, posterior_beta)):
            normal = beta_to_normal(max(alpha, 1e-3), max(beta, 1e-3))
            means[index] = normal.mean
            variances[index] = normal.variance
        distribution = PortfolioDistribution(means=means, variances=variances)
        return conditional_value_at_risk(distribution, machine_labels, theta=self.theta)
