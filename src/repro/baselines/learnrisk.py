"""Adapter exposing :class:`~repro.risk.model.LearnRiskModel` as a risk scorer.

The evaluation harness treats every approach uniformly through the
:class:`~repro.baselines.base.BaseRiskScorer` interface; this adapter builds a
LearnRisk model from the shared risk features (or generates them on demand when
the context carries none), trains it on the validation data and scores test
pairs with VaR.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..risk.feature_generation import GeneratedRiskFeatures
from ..risk.model import LearnRiskModel
from ..risk.training import TrainingConfig
from .base import BaseRiskScorer, RiskContext


class LearnRiskScorer(BaseRiskScorer):
    """The paper's LearnRisk approach behind the common scorer interface.

    Parameters
    ----------
    training_config:
        Risk-model training hyper-parameters (VaR confidence, epochs, ...).
    risk_metric:
        ``"var"`` (default), ``"cvar"`` or ``"expectation"`` for ablations.
    n_output_bins:
        Number of classifier-output bins with individually learned RSDs.
    """

    name = "LearnRisk"

    def __init__(
        self,
        training_config: TrainingConfig | None = None,
        risk_metric: str = "var",
        n_output_bins: int = 10,
    ) -> None:
        super().__init__()
        self.training_config = training_config or TrainingConfig()
        self.risk_metric = risk_metric
        self.n_output_bins = n_output_bins
        self.model: LearnRiskModel | None = None

    def fit(self, context: RiskContext) -> "LearnRiskScorer":
        features: GeneratedRiskFeatures | None = context.risk_features
        if features is None:
            raise ConfigurationError(
                "LearnRiskScorer requires context.risk_features; generate them with "
                "RiskFeatureGenerator before fitting the scorers"
            )
        self.model = LearnRiskModel(
            features,
            config=self.training_config,
            n_output_bins=self.n_output_bins,
            risk_metric=self.risk_metric,
        )
        self.model.fit(
            context.validation_features,
            context.validation_probabilities,
            context.validation_machine_labels,
            context.validation_ground_truth,
        )
        self._fitted = True
        return self

    def score(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        self._check_fitted()
        return self.model.score(metric_matrix, machine_probabilities, machine_labels)
