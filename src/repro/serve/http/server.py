"""The asyncio HTTP server: accept loop, dispatch, metrics, lifecycle.

:class:`RiskHTTPServer` ties the tier together: ``asyncio.start_server``
accepts connections, :func:`~repro.serve.http.protocol.read_request` parses
requests (keep-alive, so a load generator's persistent connections pay one
TCP handshake), the :class:`~repro.serve.http.router.Router` dispatches to
handlers, and every response is timed into per-endpoint request-latency
histograms (``http.request_seconds.<route>``) and counters
(``http.requests.<route>``, ``http.responses.<status class>``) on the shared
:class:`~repro.obs.MetricsRegistry` — the same registry the coalescer and the
:class:`~repro.serve.service.RiskService` record into, so ``GET /stats`` is
one consistent picture of the whole process.

Two entry points:

* :func:`build_server` — load a saved model directory into a fresh
  :class:`~repro.serve.registry.ModelRegistry` and wrap it (what the
  ``python -m repro.serve http`` CLI does);
* :class:`ServerHandle` — run a server on a daemon thread with its own event
  loop, for tests and the load-generator benchmark: ``spawn`` returns once
  the port is bound, ``stop`` drains the coalescer and joins the thread.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from ...exceptions import ConfigurationError, ReproError
from ...obs import MetricsRegistry
from ..registry import ModelRegistry
from . import schemas
from .coalescer import MicroBatchCoalescer
from .handlers import AppState
from .protocol import HttpError, read_request, render_response
from .router import Router, default_router


@dataclass(frozen=True)
class ServerConfig:
    """The serving tier's knobs (validated at server construction)."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 binds an ephemeral port (tests, benchmarks)
    #: Coalescer: single-pair /score requests flush at this shared batch size...
    coalesce_batch_size: int = 64
    #: ...or when the oldest waiting request has lingered this many seconds.
    coalesce_linger_seconds: float = 0.002
    #: RiskService options for every service the registry builds.
    service_batch_size: int = 256
    service_cache_size: int = 4096
    #: Hard cap on one request body.
    max_body_bytes: int = 32 * 1024 * 1024

    def validate(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ConfigurationError("port must be in [0, 65535]")
        if self.coalesce_batch_size < 1:
            raise ConfigurationError("coalesce_batch_size must be >= 1")
        if self.coalesce_linger_seconds < 0:
            raise ConfigurationError("coalesce_linger_seconds must be >= 0")
        if self.service_batch_size < 1:
            raise ConfigurationError("service_batch_size must be >= 1")
        if self.max_body_bytes < 1:
            raise ConfigurationError("max_body_bytes must be >= 1")


class RiskHTTPServer:
    """Serve risk scores, explanations and stats from a model registry.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` holding the served models; its
        ``service_options`` should route statistics into ``metrics`` so
        ``/stats`` shows serving counters (``build_server`` wires this).
    model_name:
        The registry name single-model endpoints default to.
    config:
        Network + coalescing knobs (:class:`ServerConfig`).
    metrics:
        The process metrics registry; defaults to a fresh one.
    resolver:
        Optional :class:`~repro.online.OnlineResolver` behind the
        ``/resolve`` endpoint family; without one those endpoints 503.
    clock:
        Injectable monotonic clock for request timing (tests).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        model_name: str = "default",
        *,
        config: ServerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        router: Router | None = None,
        resolver=None,
        clock=time.perf_counter,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.config.validate()
        self.registry = registry
        self.model_name = model_name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.router = router if router is not None else default_router()
        self._clock = clock
        self.coalescer = MicroBatchCoalescer(
            self._score_coalesced_batch,
            max_batch_size=self.config.coalesce_batch_size,
            max_linger=self.config.coalesce_linger_seconds,
            metrics=self.metrics,
        )
        self.state = AppState(
            registry=registry,
            model_name=model_name,
            coalescer=self.coalescer,
            metrics=self.metrics,
            coalesce_batch_size=self.config.coalesce_batch_size,
            coalesce_linger_seconds=self.config.coalesce_linger_seconds,
            resolver=resolver,
        )
        self._server: asyncio.AbstractServer | None = None
        self.host = self.config.host
        self.port = self.config.port

    def _score_coalesced_batch(self, pairs: list) -> list:
        # Resolved per batch, not per server: a hot-swap lands between
        # batches, so every coalesced batch is scored by exactly one model
        # version (the no-mid-batch-tear property the registry tests pin).
        return self.registry.service(self.model_name).score_pairs(pairs)

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        sockets = self._server.sockets or ()
        for socket_ in sockets:
            self.host, self.port = socket_.getsockname()[:2]
            break

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, then drain the coalescer's pending requests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.stop()

    # ------------------------------------------------------------ connections
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except HttpError as exc:
                    # The stream position after a malformed request is
                    # undefined — answer and close.
                    self._count_response(exc.status, "malformed")
                    writer.write(render_response(
                        exc.status,
                        schemas.dumps(self._error_payload(exc.status, exc.message)),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    return
                if request is None:
                    return
                status, body = await self._dispatch(request)
                keep_alive = request.keep_alive
                writer.write(render_response(status, body, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # --------------------------------------------------------------- dispatch
    @staticmethod
    def _error_payload(status: int, message: str) -> dict:
        return schemas.envelope(error={"status": status, "message": message})

    def _count_response(self, status: int, route_name: str) -> None:
        self.metrics.apply(counters={
            "http.requests": 1,
            f"http.requests.{route_name}": 1,
            f"http.responses.{status // 100}xx": 1,
        })

    async def _dispatch(self, request) -> tuple[int, bytes]:
        started = self._clock()
        route_name = "unrouted"
        try:
            route, path_params = self.router.match(request.method, request.path)
            request.path_params = path_params
            route_name = route.name
            status, payload = await route.handler(self.state, request)
        except HttpError as exc:
            status, payload = exc.status, self._error_payload(exc.status, exc.message)
        except ReproError as exc:
            # Library validation errors (unknown model, bad version, unfitted
            # pipeline) are client errors at the HTTP boundary.
            status, payload = 400, self._error_payload(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - the server must not die
            status, payload = 500, self._error_payload(
                500, f"internal error: {type(exc).__name__}: {exc}"
            )
        elapsed = self._clock() - started
        self.metrics.apply(
            counters={
                "http.requests": 1,
                f"http.requests.{route_name}": 1,
                f"http.responses.{status // 100}xx": 1,
            },
            observations={f"http.request_seconds.{route_name}": elapsed},
        )
        return status, schemas.dumps(payload)


def build_server(
    model_dir,
    *,
    model_name: str = "default",
    config: ServerConfig | None = None,
    metrics: MetricsRegistry | None = None,
    online_policy=None,
    events_path=None,
) -> RiskHTTPServer:
    """Load ``model_dir`` into a fresh registry and wrap it in a server.

    The registry's services are built with the config's batch/cache options
    and record into the server's metrics registry, so serving counters,
    coalescing telemetry and request latencies all land in one snapshot.

    With an ``online_policy`` (a :class:`~repro.online.ResolutionPolicy`),
    the server also carries an :class:`~repro.online.OnlineResolver` behind
    the ``/resolve`` endpoints, journalling to ``events_path`` when given (a
    resolver built on an existing log resumes its cluster state).  The
    resolver is pinned to the model version active at build time — it keeps
    scoring with that version across hot-swaps, so one audit log is always
    the work of exactly one model.
    """
    config = config if config is not None else ServerConfig()
    metrics = metrics if metrics is not None else MetricsRegistry()
    registry = ModelRegistry(
        max_batch_size=config.service_batch_size,
        cache_size=config.service_cache_size,
        metrics=metrics,
    )
    registry.load(model_name, model_dir)
    resolver = None
    if online_policy is not None:
        from ...online import EventLog, OnlineResolver

        resolver = OnlineResolver(
            registry.service(model_name),
            online_policy,
            event_log=EventLog(events_path),
            recorder=metrics,
        )
    return RiskHTTPServer(
        registry, model_name, config=config, metrics=metrics, resolver=resolver
    )


@dataclass
class ServerHandle:
    """A server running on its own daemon thread + event loop (tests, bench)."""

    server: RiskHTTPServer
    _thread: threading.Thread | None = None
    _loop: asyncio.AbstractEventLoop | None = None
    _stop_event: asyncio.Event | None = None
    _ready: threading.Event = field(default_factory=threading.Event)
    _startup_error: BaseException | None = None

    @classmethod
    def spawn(cls, server: RiskHTTPServer, timeout: float = 30.0) -> "ServerHandle":
        """Start ``server`` on a background thread; returns once it is bound."""
        handle = cls(server)
        handle._thread = threading.Thread(
            target=handle._run, name="repro-http-server", daemon=True
        )
        handle._thread.start()
        if not handle._ready.wait(timeout):
            raise RuntimeError("HTTP server did not start within the timeout")
        if handle._startup_error is not None:
            raise RuntimeError("HTTP server failed to start") from handle._startup_error
        return handle

    @property
    def address(self) -> tuple[str, int]:
        return (self.server.host, self.server.port)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to spawn()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the server (draining pending work) and join the thread."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and loop.is_running():
            loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
