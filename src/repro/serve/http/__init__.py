"""``repro.serve.http`` — the asyncio HTTP serving tier (stdlib only).

Turns the in-process serving stack (:class:`~repro.serve.service.RiskService`
micro-batching, :class:`~repro.serve.registry.ModelRegistry` hot-swap,
:mod:`repro.obs` metrics, decision-level explain payloads) into a network
service with micro-batch request coalescing:

* :mod:`~repro.serve.http.protocol` — a minimal, strict HTTP/1.1
  request/response layer over asyncio streams;
* :mod:`~repro.serve.http.coalescer` — :class:`MicroBatchCoalescer` gathers
  concurrent single-pair ``/score`` requests into one kernel-warm batch
  (bounded size + max-linger deadline, per-request futures, per-item error
  isolation); the sans-IO :class:`CoalescerCore` holds the timing logic;
* :mod:`~repro.serve.http.schemas` — the versioned JSON wire format;
* :mod:`~repro.serve.http.router` / :mod:`~repro.serve.http.handlers` — the
  endpoint table (``/score``, ``/explain``, ``/stats``, ``/healthz``,
  ``/models``, ``/models/swap``, ``/models/rollback``);
* :mod:`~repro.serve.http.server` — :class:`RiskHTTPServer` plus
  :func:`build_server` (model directory in, server out) and
  :class:`ServerHandle` (background-thread runner for tests and the load
  benchmark).

Quick start::

    from repro.serve.http import ServerConfig, ServerHandle, build_server

    server = build_server("models/ds-v1", config=ServerConfig(port=8080))
    with ServerHandle.spawn(server) as handle:
        host, port = handle.address
        ...  # POST /score, /explain; GET /stats

or from the command line: ``python -m repro.serve http --model models/ds-v1
--port 8080``.
"""

from .coalescer import CoalescerCore, MicroBatchCoalescer, PendingEntry, TakenBatch
from .protocol import HttpError, HttpRequest, read_request, render_response
from .router import Router, default_router
from .schemas import SCHEMA_VERSION, pair_to_payload, scored_pair_payload
from .server import RiskHTTPServer, ServerConfig, ServerHandle, build_server

__all__ = [
    "CoalescerCore",
    "HttpError",
    "HttpRequest",
    "MicroBatchCoalescer",
    "PendingEntry",
    "RiskHTTPServer",
    "Router",
    "SCHEMA_VERSION",
    "ServerConfig",
    "ServerHandle",
    "TakenBatch",
    "build_server",
    "default_router",
    "pair_to_payload",
    "read_request",
    "render_response",
    "scored_pair_payload",
]
