"""JSON request/response schemas of the HTTP serving tier.

Every payload the server accepts or emits is defined here, in one place, so
the wire format is reviewable (and golden-testable) independently of the
transport.  All responses carry ``"schema_version"``
(:data:`SCHEMA_VERSION`), bumped on any layout change, and are serialised
with :func:`dumps` — sorted keys, compact separators — so a given payload has
exactly one byte representation (what the golden fixtures pin).

Request side: a record pair arrives as::

    {"left":  {"id": "l1", "values": {"title": "...", "year": 1994},
               "source": "dblp"},
     "right": {"id": "r1", "values": {...}}}

``values`` must use the served model's schema attributes; unknown attributes,
non-scalar values or missing ids are rejected with ``400`` before any scoring
happens.  ``POST /score`` accepts either ``{"pair": {...}}`` (coalesced into
shared micro-batches) or ``{"pairs": [...]}`` (scored as its own batch);
``POST /explain`` accepts the same two shapes.

Response side: scored pairs serialise to their ids plus the three scoring
outputs; explanations reuse the exact
:meth:`~repro.risk.model.PairRiskExplanation.to_dict` payload introduced with
the explain telemetry, so the HTTP body and the ``serve explain`` CLI stay
one format.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ...data.records import Record, RecordPair
from ...data.schema import Schema
from ..service import ScoredPair
from .protocol import HttpError, HttpRequest

#: Version stamped into every response body; bump on any payload change.
SCHEMA_VERSION = 1

#: Hard cap on pairs per request body (memory guard, not a scoring limit).
MAX_PAIRS_PER_REQUEST = 10_000

#: JSON value types accepted as attribute values.
_SCALAR_TYPES = (str, int, float, bool)


def dumps(payload: Mapping[str, Any]) -> bytes:
    """The one serialiser for response bodies: sorted keys, compact, UTF-8.

    Sorted keys + fixed separators mean a payload dict has exactly one byte
    encoding — the property the golden HTTP fixtures assert.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def parse_json_body(request: HttpRequest) -> dict[str, Any]:
    """The request body as a JSON object (``{}`` for an empty body)."""
    if not request.body:
        return {}
    try:
        body = json.loads(request.body)
    except json.JSONDecodeError as exc:
        raise HttpError(400, f"request body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise HttpError(400, "request body must be a JSON object")
    return body


# ------------------------------------------------------------------- requests
def record_from_payload(
    payload: Any, schema: Schema, side: str, default_source: str
) -> Record:
    """Validate and build one :class:`Record` from its JSON form."""
    if not isinstance(payload, dict):
        raise HttpError(400, f"{side} record must be a JSON object")
    record_id = payload.get("id")
    if not isinstance(record_id, str) or not record_id:
        raise HttpError(400, f"{side} record needs a non-empty string 'id'")
    values = payload.get("values")
    if not isinstance(values, dict):
        raise HttpError(400, f"{side} record needs a 'values' object")
    unknown = set(values) - set(schema.names)
    if unknown:
        raise HttpError(
            400,
            f"{side} record has attributes {sorted(unknown)} not in the model "
            f"schema {list(schema.names)}",
        )
    for name, value in values.items():
        if value is not None and not isinstance(value, _SCALAR_TYPES):
            raise HttpError(
                400,
                f"{side} record attribute {name!r} must be a scalar or null, "
                f"got {type(value).__name__}",
            )
    source = payload.get("source", default_source)
    if not isinstance(source, str):
        raise HttpError(400, f"{side} record 'source' must be a string")
    return Record(record_id=record_id, values=dict(values), source=source)


def pair_from_payload(payload: Any, schema: Schema) -> RecordPair:
    """Validate and build one :class:`RecordPair` from its JSON form."""
    if not isinstance(payload, dict):
        raise HttpError(400, "each pair must be a JSON object")
    if "left" not in payload or "right" not in payload:
        raise HttpError(400, "each pair needs 'left' and 'right' records")
    return RecordPair(
        left=record_from_payload(payload["left"], schema, "left", "left"),
        right=record_from_payload(payload["right"], schema, "right", "right"),
    )


def pairs_from_body(
    body: Mapping[str, Any], schema: Schema
) -> tuple[list[RecordPair], bool]:
    """The pairs of a score/explain body, plus whether it was the single form.

    ``{"pair": {...}}`` -> one pair, single=True (the coalescing path);
    ``{"pairs": [...]}`` -> the listed pairs, single=False (one owned batch).
    """
    if "pair" in body and "pairs" in body:
        raise HttpError(400, "provide either 'pair' or 'pairs', not both")
    if "pair" in body:
        return [pair_from_payload(body["pair"], schema)], True
    if "pairs" in body:
        listed = body["pairs"]
        if not isinstance(listed, list) or not listed:
            raise HttpError(400, "'pairs' must be a non-empty JSON array")
        if len(listed) > MAX_PAIRS_PER_REQUEST:
            raise HttpError(
                413, f"at most {MAX_PAIRS_PER_REQUEST} pairs per request"
            )
        return [pair_from_payload(item, schema) for item in listed], False
    raise HttpError(400, "request body needs a 'pair' object or a 'pairs' array")


def records_from_body(body: Mapping[str, Any], schema: Schema) -> list[Record]:
    """The records of a resolve body.

    ``{"record": {...}}`` -> one record; ``{"records": [...]}`` -> the listed
    records, resolved in order.  Records default to source ``"stream"`` when
    the payload carries none (the online key is ``source:id``, so clients
    resolving multi-source streams should set it explicitly).
    """
    if "record" in body and "records" in body:
        raise HttpError(400, "provide either 'record' or 'records', not both")
    if "record" in body:
        return [record_from_payload(body["record"], schema, "record", "stream")]
    if "records" in body:
        listed = body["records"]
        if not isinstance(listed, list) or not listed:
            raise HttpError(400, "'records' must be a non-empty JSON array")
        if len(listed) > MAX_PAIRS_PER_REQUEST:
            raise HttpError(
                413, f"at most {MAX_PAIRS_PER_REQUEST} records per request"
            )
        return [
            record_from_payload(item, schema, f"records[{index}]", "stream")
            for index, item in enumerate(listed)
        ]
    raise HttpError(400, "request body needs a 'record' object or a 'records' array")


def top_rules_from_body(body: Mapping[str, Any]) -> int | None:
    """The optional ``top_rules`` truncation knob of an explain body."""
    top_rules = body.get("top_rules")
    if top_rules is None:
        return None
    if not isinstance(top_rules, int) or isinstance(top_rules, bool) or top_rules < 1:
        raise HttpError(400, "'top_rules' must be a positive integer")
    return top_rules


# ------------------------------------------------------------------ responses
def pair_to_payload(pair: RecordPair) -> dict[str, Any]:
    """A pair's JSON request form (the client-side serialiser, round-trip safe)."""
    return {
        "left": {
            "id": pair.left.record_id,
            "source": pair.left.source,
            "values": dict(pair.left.values),
        },
        "right": {
            "id": pair.right.record_id,
            "source": pair.right.source,
            "values": dict(pair.right.values),
        },
    }


def scored_pair_payload(scored: ScoredPair) -> dict[str, Any]:
    """One scored pair's response entry (ids + the three scoring outputs)."""
    left_id, right_id = scored.pair.pair_id
    return {
        "left_id": left_id,
        "right_id": right_id,
        "probability": scored.probability,
        "machine_label": scored.machine_label,
        "risk_score": scored.risk_score,
    }


def envelope(**payload: Any) -> dict[str, Any]:
    """A response body with the schema version stamped in."""
    return {"schema_version": SCHEMA_VERSION, **payload}
