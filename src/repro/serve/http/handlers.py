"""Endpoint handlers: the application logic behind each route.

Handlers are thin adapters from validated JSON (see
:mod:`repro.serve.http.schemas`) to the existing serving primitives — nothing
here invents behaviour:

* ``/score`` resolves pairs against the served model's schema, then either
  awaits the shared :class:`~repro.serve.http.coalescer.MicroBatchCoalescer`
  (single pair: joins a kernel-warm micro-batch with concurrent requests) or
  scores the posted batch directly through
  :meth:`~repro.serve.service.RiskService.score_pairs`;
* ``/explain`` is :meth:`RiskService.explain_pairs` —
  :meth:`~repro.risk.model.PairRiskExplanation.to_dict` payloads, risk scores
  bit-identical to ``/score``;
* ``/stats`` is the :mod:`repro.obs` snapshot (counters, gauges, histograms,
  spans) next to the service's own consistent
  :meth:`~repro.serve.service.ServiceStats.snapshot`;
* ``/models/swap`` and ``/models/rollback`` drive the thread-safe
  :class:`~repro.serve.registry.ModelRegistry` hot-swap — in-flight batches
  keep their resolved service, the *next* batch sees the new version.

Blocking work (scoring, explaining, loading a model directory from disk) runs
in the event loop's executor so one slow request never stalls the accept
loop.  Handlers return ``(status, payload)``; raising
:class:`~repro.serve.http.protocol.HttpError` (or any
:class:`~repro.exceptions.ReproError`, mapped to 400) produces a JSON error
response.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from ...obs import MetricsRegistry
from ..registry import ModelRegistry
from ..service import RiskService
from .protocol import HttpError, HttpRequest
from . import schemas

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coalescer import MicroBatchCoalescer


@dataclass
class AppState:
    """Everything handlers need: the registry, the coalescer, the metrics."""

    registry: ModelRegistry
    model_name: str
    coalescer: "MicroBatchCoalescer"
    metrics: MetricsRegistry
    #: Knobs echoed by /healthz and /stats so operators can see the config.
    coalesce_batch_size: int = 0
    coalesce_linger_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def service(self) -> RiskService:
        """The active version's service (resolved per call — hot-swap aware)."""
        return self.registry.service(self.model_name)

    def schema(self):
        return self.service().pipeline.vectorizer.schema


async def _in_executor(function, /, *args, **kwargs):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, partial(function, *args, **kwargs))


# ------------------------------------------------------------------ liveness
async def handle_healthz(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    return 200, schemas.envelope(
        status="ok",
        model=state.model_name,
        active_version=state.registry.active_version(state.model_name),
        coalescing={
            "max_batch_size": state.coalesce_batch_size,
            "max_linger_seconds": state.coalesce_linger_seconds,
        },
    )


async def handle_models(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    return 200, schemas.envelope(
        default_model=state.model_name,
        models=state.registry.describe(),
    )


# ------------------------------------------------------------------- scoring
async def handle_score(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    pairs, single = schemas.pairs_from_body(body, state.schema())
    if single:
        scored = await state.coalescer.submit(pairs[0])
        return 200, schemas.envelope(
            coalesced=True, result=schemas.scored_pair_payload(scored)
        )
    scored_pairs = await _in_executor(state.service().score_pairs, pairs)
    return 200, schemas.envelope(
        coalesced=False,
        results=[schemas.scored_pair_payload(scored) for scored in scored_pairs],
    )


async def handle_explain(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    pairs, _ = schemas.pairs_from_body(body, state.schema())
    top_rules = schemas.top_rules_from_body(body)
    explanations = await _in_executor(
        state.service().explain_pairs, pairs, top_rules=top_rules
    )
    results = []
    for pair, explanation in zip(pairs, explanations):
        left_id, right_id = pair.pair_id
        results.append(
            {"left_id": left_id, "right_id": right_id, **explanation.to_dict()}
        )
    return 200, schemas.envelope(results=results)


# --------------------------------------------------------------------- stats
async def handle_stats(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    service = state.service()
    return 200, schemas.envelope(
        model=state.model_name,
        active_version=state.registry.active_version(state.model_name),
        service=service.stats.snapshot(),
        metrics=state.metrics.snapshot(),
    )


# ------------------------------------------------------------- model control
async def handle_swap(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    model = body.get("model", state.model_name)
    if not isinstance(model, str) or not model:
        raise HttpError(400, "'model' must be a non-empty string")
    directory = body.get("directory")
    version = body.get("version")
    if version is not None and (not isinstance(version, int) or isinstance(version, bool)):
        raise HttpError(400, "'version' must be an integer")
    if directory is not None:
        if not isinstance(directory, str):
            raise HttpError(400, "'directory' must be a string path")
        # Loading reads manifest + npz from disk; keep it off the event loop.
        registered = await _in_executor(
            state.registry.load, model, directory, version=version
        )
    elif version is not None:
        state.registry.activate(model, version)
        registered = version
    else:
        raise HttpError(
            400, "swap needs a 'directory' to load or a 'version' to activate"
        )
    return 200, schemas.envelope(
        model=model,
        registered_version=registered,
        active_version=state.registry.active_version(model),
        versions=state.registry.versions(model),
    )


async def handle_rollback(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    model = body.get("model", state.model_name)
    if not isinstance(model, str) or not model:
        raise HttpError(400, "'model' must be a non-empty string")
    restored = state.registry.rollback(model)
    return 200, schemas.envelope(
        model=model,
        active_version=restored,
        versions=state.registry.versions(model),
    )
