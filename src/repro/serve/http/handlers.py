"""Endpoint handlers: the application logic behind each route.

Handlers are thin adapters from validated JSON (see
:mod:`repro.serve.http.schemas`) to the existing serving primitives — nothing
here invents behaviour:

* ``/score`` resolves pairs against the served model's schema, then either
  awaits the shared :class:`~repro.serve.http.coalescer.MicroBatchCoalescer`
  (single pair: joins a kernel-warm micro-batch with concurrent requests) or
  scores the posted batch directly through
  :meth:`~repro.serve.service.RiskService.score_pairs`;
* ``/explain`` is :meth:`RiskService.explain_pairs` —
  :meth:`~repro.risk.model.PairRiskExplanation.to_dict` payloads, risk scores
  bit-identical to ``/score``;
* ``/stats`` is the :mod:`repro.obs` snapshot (counters, gauges, histograms,
  spans) next to the service's own consistent
  :meth:`~repro.serve.service.ServiceStats.snapshot`;
* ``/models/swap`` and ``/models/rollback`` drive the thread-safe
  :class:`~repro.serve.registry.ModelRegistry` hot-swap — in-flight batches
  keep their resolved service, the *next* batch sees the new version;
* ``/resolve``, ``/clusters/{id}``, ``/events`` and ``/events/revert``
  expose the :class:`~repro.online.OnlineResolver` when the server was
  built with an online policy (``503`` otherwise): post records, read the
  clusters they merged into, tail the audit log, revert a decision.

Blocking work (scoring, explaining, loading a model directory from disk) runs
in the event loop's executor so one slow request never stalls the accept
loop.  Handlers return ``(status, payload)``; raising
:class:`~repro.serve.http.protocol.HttpError` (or any
:class:`~repro.exceptions.ReproError`, mapped to 400) produces a JSON error
response.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING
from urllib.parse import parse_qs

from ...exceptions import DataError
from ...obs import MetricsRegistry
from ..registry import ModelRegistry
from ..service import RiskService
from .protocol import HttpError, HttpRequest
from . import schemas

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...online import OnlineResolver
    from .coalescer import MicroBatchCoalescer


@dataclass
class AppState:
    """Everything handlers need: the registry, the coalescer, the metrics."""

    registry: ModelRegistry
    model_name: str
    coalescer: "MicroBatchCoalescer"
    metrics: MetricsRegistry
    #: Knobs echoed by /healthz and /stats so operators can see the config.
    coalesce_batch_size: int = 0
    coalesce_linger_seconds: float = 0.0
    #: The online resolver behind /resolve, /clusters and /events; ``None``
    #: until the server is built with an online policy (the endpoints 503).
    resolver: "OnlineResolver | None" = None
    extra: dict = field(default_factory=dict)

    def service(self) -> RiskService:
        """The active version's service (resolved per call — hot-swap aware)."""
        return self.registry.service(self.model_name)

    def schema(self):
        return self.service().pipeline.vectorizer.schema


async def _in_executor(function, /, *args, **kwargs):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, partial(function, *args, **kwargs))


# ------------------------------------------------------------------ liveness
async def handle_healthz(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    return 200, schemas.envelope(
        status="ok",
        model=state.model_name,
        active_version=state.registry.active_version(state.model_name),
        coalescing={
            "max_batch_size": state.coalesce_batch_size,
            "max_linger_seconds": state.coalesce_linger_seconds,
        },
    )


async def handle_models(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    return 200, schemas.envelope(
        default_model=state.model_name,
        models=state.registry.describe(),
    )


# ------------------------------------------------------------------- scoring
async def handle_score(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    pairs, single = schemas.pairs_from_body(body, state.schema())
    if single:
        scored = await state.coalescer.submit(pairs[0])
        return 200, schemas.envelope(
            coalesced=True, result=schemas.scored_pair_payload(scored)
        )
    scored_pairs = await _in_executor(state.service().score_pairs, pairs)
    return 200, schemas.envelope(
        coalesced=False,
        results=[schemas.scored_pair_payload(scored) for scored in scored_pairs],
    )


async def handle_explain(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    pairs, _ = schemas.pairs_from_body(body, state.schema())
    top_rules = schemas.top_rules_from_body(body)
    explanations = await _in_executor(
        state.service().explain_pairs, pairs, top_rules=top_rules
    )
    results = []
    for pair, explanation in zip(pairs, explanations):
        left_id, right_id = pair.pair_id
        results.append(
            {"left_id": left_id, "right_id": right_id, **explanation.to_dict()}
        )
    return 200, schemas.envelope(results=results)


# ---------------------------------------------------------- online resolution
def _resolver(state: AppState) -> "OnlineResolver":
    if state.resolver is None:
        raise HttpError(
            503,
            "online resolution is not enabled on this server; "
            "start it with an online policy (serve http --resolve-attributes ...)",
        )
    return state.resolver


async def handle_resolve(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    """Feed one or more records through the online resolver, in order."""
    resolver = _resolver(state)
    body = schemas.parse_json_body(request)
    records = schemas.records_from_body(body, state.schema())
    events = []
    for record in records:
        # One record at a time keeps the decision order identical to the
        # order the client posted (the audit log's determinism contract).
        events.extend(await _in_executor(resolver.add_record, record))
    return 200, schemas.envelope(
        records=len(records),
        events=[event.to_dict() for event in events],
    )


async def handle_cluster(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    """The cluster containing one record key (``source:record_id``)."""
    resolver = _resolver(state)
    key = request.path_params["id"]
    try:
        members = resolver.cluster_of(key)
    except DataError as exc:
        raise HttpError(404, str(exc)) from exc
    return 200, schemas.envelope(id=key, cluster=members)


async def handle_events(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    """The audit log, optionally only events after ``?since=<sequence>``."""
    resolver = _resolver(state)
    query = parse_qs(request.query)
    since = 0
    if "since" in query:
        try:
            since = int(query["since"][-1])
        except ValueError as exc:
            raise HttpError(400, "'since' must be an integer") from exc
        if since < 0:
            raise HttpError(400, "'since' must be >= 0")
    events = resolver.events(since=since)
    return 200, schemas.envelope(
        since=since,
        count=len(events),
        events=[event.to_dict() for event in events],
    )


async def handle_revert(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    """Revert one merge/split decision by event id (replays the log)."""
    resolver = _resolver(state)
    body = schemas.parse_json_body(request)
    event_id = body.get("event_id")
    if not isinstance(event_id, str) or not event_id:
        raise HttpError(400, "'event_id' must be a non-empty string")
    event = await _in_executor(resolver.revert, event_id)
    return 200, schemas.envelope(
        event=event.to_dict(),
        clusters=resolver.state_dict(),
    )


# --------------------------------------------------------------------- stats
async def handle_stats(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    service = state.service()
    return 200, schemas.envelope(
        model=state.model_name,
        active_version=state.registry.active_version(state.model_name),
        service=service.stats.snapshot(),
        metrics=state.metrics.snapshot(),
    )


# ------------------------------------------------------------- model control
async def handle_swap(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    model = body.get("model", state.model_name)
    if not isinstance(model, str) or not model:
        raise HttpError(400, "'model' must be a non-empty string")
    directory = body.get("directory")
    version = body.get("version")
    if version is not None and (not isinstance(version, int) or isinstance(version, bool)):
        raise HttpError(400, "'version' must be an integer")
    if directory is not None:
        if not isinstance(directory, str):
            raise HttpError(400, "'directory' must be a string path")
        # Loading reads manifest + npz from disk; keep it off the event loop.
        registered = await _in_executor(
            state.registry.load, model, directory, version=version
        )
    elif version is not None:
        state.registry.activate(model, version)
        registered = version
    else:
        raise HttpError(
            400, "swap needs a 'directory' to load or a 'version' to activate"
        )
    return 200, schemas.envelope(
        model=model,
        registered_version=registered,
        active_version=state.registry.active_version(model),
        versions=state.registry.versions(model),
    )


async def handle_rollback(state: AppState, request: HttpRequest) -> tuple[int, dict]:
    body = schemas.parse_json_body(request)
    model = body.get("model", state.model_name)
    if not isinstance(model, str) or not model:
        raise HttpError(400, "'model' must be a non-empty string")
    restored = state.registry.rollback(model)
    return 200, schemas.envelope(
        model=model,
        active_version=restored,
        versions=state.registry.versions(model),
    )
