"""Micro-batch request coalescing: many concurrent requests, one warm batch.

The serving economics of the risk pipeline strongly favour batches: one
:meth:`RiskService.score_pairs` call amortises the vectoriser's column
kernels, the classifier forward pass and the rule-kernel membership over
every pair in the batch.  A naive HTTP server would score each single-pair
``POST /score`` alone and forfeit all of that.  The coalescer recovers it:

* each request's pair goes into a shared pending queue and its caller awaits
  a per-request future;
* a flusher task scores the queue as one batch the moment it reaches
  ``max_batch_size``, or when the *oldest* pending request has lingered for
  ``max_linger`` seconds — whichever comes first, so the latency cost of
  batching is bounded by the linger knob;
* the shared batch's results resolve every request's future individually.

The batching *decision* logic lives in :class:`CoalescerCore`, a sans-IO
state machine with an injectable clock — the unit tests drive it with a fake
clock and never sleep.  :class:`MicroBatchCoalescer` wraps the core in
asyncio: an event-driven flusher loop, scoring offloaded to a thread executor
(so the event loop keeps accepting requests — and filling the next batch —
while numpy works), per-item error isolation (a failing batch is retried
pair-by-pair so one poisoned pair fails only its own future) and shutdown
draining (``stop()`` scores everything still pending before returning).

Because the scoring stack is batch-invariant by construction (the
``repro.numerics`` contract), coalescing never changes a single bit of any
result — which batch a request lands in is purely a latency/throughput
decision, and the serving benchmark's ``--smoke`` mode asserts exactly that.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ...exceptions import ConfigurationError
from ...obs import NULL_RECORDER


@dataclass
class PendingEntry:
    """One queued item plus its resolution slot (a future in the async wrapper)."""

    item: Any
    enqueued_at: float
    future: Any = None


@dataclass(frozen=True)
class TakenBatch:
    """One batch popped from the core, with the telemetry of the take."""

    entries: tuple[PendingEntry, ...]
    #: Seconds each entry spent queued before the take (aligned with entries).
    linger_waits: tuple[float, ...]
    #: Pending items still queued *after* this take (overflow beyond the batch).
    queue_depth_after: int

    def __len__(self) -> int:
        return len(self.entries)


class CoalescerCore:
    """The sans-IO batching state machine (all timing decisions, no waiting).

    Parameters
    ----------
    max_batch_size:
        A take never returns more than this many entries; reaching it makes
        the queue immediately ready.
    max_linger:
        Seconds the oldest pending entry may wait before the queue becomes
        ready regardless of fill.  ``0`` disables lingering: every take
        flushes whatever is queued as soon as the flusher looks.
    clock:
        Monotonic seconds; injectable so tests drive deadlines explicitly.
    """

    def __init__(
        self,
        max_batch_size: int = 32,
        max_linger: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if max_linger < 0:
            raise ConfigurationError("max_linger must be >= 0")
        self.max_batch_size = int(max_batch_size)
        self.max_linger = float(max_linger)
        self.clock = clock
        self._pending: deque[PendingEntry] = deque()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def add(self, item: Any, future: Any = None) -> PendingEntry:
        """Queue ``item``, stamping its arrival time from the core's clock."""
        entry = PendingEntry(item=item, enqueued_at=self.clock(), future=future)
        self._pending.append(entry)
        return entry

    def is_full(self) -> bool:
        return len(self._pending) >= self.max_batch_size

    def deadline(self) -> float | None:
        """Clock time at which the oldest pending entry must flush (None if idle)."""
        if not self._pending:
            return None
        return self._pending[0].enqueued_at + self.max_linger

    def ready(self, now: float) -> bool:
        """Whether a take should happen at clock time ``now``."""
        if not self._pending:
            return False
        return self.is_full() or now >= self._pending[0].enqueued_at + self.max_linger

    def take(self, now: float) -> TakenBatch:
        """Pop up to ``max_batch_size`` entries (oldest first) as one batch."""
        entries = []
        while self._pending and len(entries) < self.max_batch_size:
            entries.append(self._pending.popleft())
        return TakenBatch(
            entries=tuple(entries),
            linger_waits=tuple(max(0.0, now - entry.enqueued_at) for entry in entries),
            queue_depth_after=len(self._pending),
        )


@dataclass
class _CoalescerMetricNames:
    """The obs names one coalescer records under (stable, documented surface)."""

    batches: str = "coalesce.batches"
    pairs: str = "coalesce.pairs"
    single_retries: str = "coalesce.single_retries"
    failed_items: str = "coalesce.failed_items"
    batch_fill: str = "coalesce.batch_fill"
    linger_seconds: str = "coalesce.linger_seconds"
    queue_depth: str = "coalesce.queue_depth"


class MicroBatchCoalescer:
    """Coalesce concurrent :meth:`submit` calls into shared scored batches.

    Parameters
    ----------
    score_batch:
        Synchronous batch function ``list[item] -> list[result]`` (typically
        ``service.score_pairs``); executed in ``executor`` so the event loop
        stays free to accept — and coalesce — more requests meanwhile.
    max_batch_size, max_linger, clock:
        Forwarded to :class:`CoalescerCore` (see there).
    metrics:
        A :class:`~repro.obs.MetricsRegistry` (or recorder) for coalescing
        telemetry: batch fill / linger wait / queue depth histograms plus
        batch and pair counters.  Defaults to the no-op recorder.
    executor:
        ``concurrent.futures`` executor for the scoring calls; ``None`` uses
        the event loop's default thread pool.
    """

    def __init__(
        self,
        score_batch: Callable[[list[Any]], Sequence[Any]],
        *,
        max_batch_size: int = 32,
        max_linger: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        metrics: Any = None,
        executor: Any = None,
    ) -> None:
        self._score_batch = score_batch
        self._core = CoalescerCore(max_batch_size, max_linger, clock)
        self._metrics = metrics if metrics is not None else NULL_RECORDER
        self._names = _CoalescerMetricNames()
        self._executor = executor
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def _ensure_running(self) -> None:
        if self._wake is None:
            self._wake = asyncio.Event()
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="micro-batch-coalescer"
            )

    async def stop(self) -> None:
        """Drain every pending future (scoring them now), then stop the flusher."""
        self._closed = True
        if self._task is None:
            return
        assert self._wake is not None
        self._wake.set()
        await self._task
        self._task = None

    @property
    def pending_count(self) -> int:
        return self._core.pending_count

    # ---------------------------------------------------------------- submit
    async def submit(self, item: Any) -> Any:
        """Queue ``item`` and await its individually-resolved result."""
        if self._closed:
            raise RuntimeError("coalescer is stopped")
        self._ensure_running()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._core.add(item, future)
        assert self._wake is not None
        self._wake.set()
        return await future

    # ---------------------------------------------------------- flusher loop
    async def _run(self) -> None:
        wake = self._wake
        assert wake is not None
        while True:
            if not self._core.pending_count:
                if self._closed:
                    return
                await wake.wait()
                wake.clear()
                continue
            now = self._core.clock()
            if not self._closed and not self._core.ready(now):
                # Sleep until the oldest entry's linger deadline, waking early
                # when a new submit might have filled the batch.  The deadline
                # is pinned to the *first* entry, so later arrivals never
                # extend the wait.
                deadline = self._core.deadline()
                assert deadline is not None
                try:
                    await asyncio.wait_for(wake.wait(), timeout=max(0.0, deadline - now))
                except (asyncio.TimeoutError, TimeoutError):
                    pass
                wake.clear()
                continue
            batch = self._core.take(self._core.clock())
            self._record_take(batch)
            await self._flush(batch)

    def _record_take(self, batch: TakenBatch) -> None:
        names = self._names
        self._metrics.apply(
            counters={names.batches: 1, names.pairs: len(batch)},
            observations={names.batch_fill: len(batch)},
        )
        # Per-entry observations (variable count) go separately; the batch
        # fill/counters above are the invariant-bearing pair.
        for wait in batch.linger_waits:
            self._metrics.observe(names.linger_seconds, wait)
        self._metrics.observe(names.queue_depth, batch.queue_depth_after)

    async def _flush(self, batch: TakenBatch) -> None:
        if not batch.entries:
            return
        loop = asyncio.get_running_loop()
        items = [entry.item for entry in batch.entries]
        try:
            results = await loop.run_in_executor(
                self._executor, self._score_batch, items
            )
        except Exception as exc:
            await self._flush_individually(batch, exc)
            return
        if len(results) != len(batch.entries):
            error = RuntimeError(
                f"score_batch returned {len(results)} results for {len(items)} items"
            )
            for entry in batch.entries:
                self._resolve_error(entry, error)
            return
        for entry, result in zip(batch.entries, results):
            self._resolve(entry, result)

    async def _flush_individually(self, batch: TakenBatch, batch_error: Exception) -> None:
        """Per-item error isolation: re-score a failed batch pair by pair.

        A single poisoned item (bad value, schema violation) must fail only
        its own caller, not every request that happened to share its batch.
        Single-item batches skip the retry — the batch error *is* the item's
        error.
        """
        loop = asyncio.get_running_loop()
        if len(batch.entries) == 1:
            self._metrics.count(self._names.failed_items)
            self._resolve_error(batch.entries[0], batch_error)
            return
        for entry in batch.entries:
            self._metrics.count(self._names.single_retries)
            try:
                results = await loop.run_in_executor(
                    self._executor, self._score_batch, [entry.item]
                )
                if len(results) != 1:
                    raise RuntimeError(
                        f"score_batch returned {len(results)} results for 1 item"
                    )
            except Exception as exc:
                self._metrics.count(self._names.failed_items)
                self._resolve_error(entry, exc)
            else:
                self._resolve(entry, results[0])

    @staticmethod
    def _resolve(entry: PendingEntry, result: Any) -> None:
        future = entry.future
        if future is not None and not future.done():
            future.set_result(result)

    @staticmethod
    def _resolve_error(entry: PendingEntry, error: Exception) -> None:
        future = entry.future
        if future is not None and not future.done():
            future.set_exception(error)
