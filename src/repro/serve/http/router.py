"""The endpoint table: (method, path) routes to async handlers.

The serving tier's URL space is small and mostly static, so routing is an
exact dictionary lookup first, with a short pattern list for the few
parameterised paths (``/clusters/{id}``): a ``{param}`` segment captures
exactly one non-empty path segment into ``HttpRequest.path_params``.  Each
route carries a short ``name`` that keys the per-endpoint observability
series (``http.requests.<name>`` counters, ``http.request_seconds.<name>``
histograms), so the route table is also the catalogue of metric names an
operator will see.

``match`` distinguishes an unknown path (``404``) from a known path hit
with the wrong method (``405``), which is what well-behaved HTTP clients
expect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from .protocol import HttpError, HttpRequest

#: A handler takes the shared app state and the request, returns
#: ``(status, payload dict)``.
Handler = Callable[[Any, HttpRequest], Awaitable[tuple[int, dict]]]


@dataclass(frozen=True)
class Route:
    method: str
    path: str
    name: str
    handler: Handler


class Router:
    """Exact-match + ``{param}`` routing with 404/405 discrimination."""

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Route] = {}
        self._paths: set[str] = set()
        self._patterns: list[tuple[tuple[str, ...], Route]] = []

    def add(self, method: str, path: str, name: str, handler: Handler) -> None:
        method = method.upper()
        if any(r.method == method and r.path == path for r in self.routes()):
            raise ValueError(f"duplicate route {method} {path}")
        route = Route(method, path, name, handler)
        if "{" in path:
            self._patterns.append((tuple(path.split("/")), route))
        else:
            self._routes[(method, path)] = route
            self._paths.add(path)

    @staticmethod
    def _pattern_params(
        pattern: tuple[str, ...], segments: tuple[str, ...]
    ) -> dict[str, str] | None:
        """Captured params when ``segments`` fits ``pattern``, else ``None``."""
        if len(pattern) != len(segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(pattern, segments):
            if expected.startswith("{") and expected.endswith("}"):
                if not actual:
                    return None
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params

    def match(self, method: str, path: str) -> tuple[Route, dict[str, str]]:
        """The route for ``(method, path)`` plus its captured path params."""
        method = method.upper()
        route = self._routes.get((method, path))
        if route is not None:
            return route, {}
        segments = tuple(path.split("/"))
        allowed: list[str] = []
        for pattern, candidate in self._patterns:
            params = self._pattern_params(pattern, segments)
            if params is None:
                continue
            if candidate.method == method:
                return candidate, params
            allowed.append(candidate.method)
        if path in self._paths:
            allowed.extend(m for (m, p) in self._routes if p == path)
        if allowed:
            raise HttpError(
                405, f"method {method} not allowed on {path} (allowed: {sorted(set(allowed))})"
            )
        raise HttpError(404, f"no such endpoint: {path}")

    def resolve(self, method: str, path: str) -> Route:
        """The route alone (back-compat wrapper around :meth:`match`)."""
        return self.match(method, path)[0]

    def routes(self) -> list[Route]:
        """Every registered route (the endpoint table, for /models and docs)."""
        return sorted(
            list(self._routes.values()) + [route for _, route in self._patterns],
            key=lambda r: (r.path, r.method),
        )


def default_router() -> Router:
    """The serving tier's standard endpoint table."""
    from . import handlers

    router = Router()
    router.add("GET", "/healthz", "healthz", handlers.handle_healthz)
    router.add("GET", "/models", "models", handlers.handle_models)
    router.add("GET", "/stats", "stats", handlers.handle_stats)
    router.add("POST", "/score", "score", handlers.handle_score)
    router.add("POST", "/explain", "explain", handlers.handle_explain)
    router.add("POST", "/models/swap", "swap", handlers.handle_swap)
    router.add("POST", "/models/rollback", "rollback", handlers.handle_rollback)
    # Online resolution (503 until the server is built with an online policy).
    router.add("POST", "/resolve", "resolve", handlers.handle_resolve)
    router.add("GET", "/clusters/{id}", "cluster", handlers.handle_cluster)
    router.add("GET", "/events", "events", handlers.handle_events)
    router.add("POST", "/events/revert", "revert", handlers.handle_revert)
    return router
