"""The endpoint table: fixed (method, path) routes to async handlers.

The serving tier's URL space is small and static, so routing is an exact
dictionary lookup — no patterns, no parameters.  Each route carries a short
``name`` that keys the per-endpoint observability series
(``http.requests.<name>`` counters, ``http.request_seconds.<name>``
histograms), so the route table is also the catalogue of metric names an
operator will see.

``resolve`` distinguishes an unknown path (``404``) from a known path hit
with the wrong method (``405``), which is what well-behaved HTTP clients
expect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from .protocol import HttpError, HttpRequest

#: A handler takes the shared app state and the request, returns
#: ``(status, payload dict)``.
Handler = Callable[[Any, HttpRequest], Awaitable[tuple[int, dict]]]


@dataclass(frozen=True)
class Route:
    method: str
    path: str
    name: str
    handler: Handler


class Router:
    """Exact-match (method, path) routing with 404/405 discrimination."""

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Route] = {}
        self._paths: set[str] = set()

    def add(self, method: str, path: str, name: str, handler: Handler) -> None:
        key = (method.upper(), path)
        if key in self._routes:
            raise ValueError(f"duplicate route {method} {path}")
        self._routes[key] = Route(method.upper(), path, name, handler)
        self._paths.add(path)

    def resolve(self, method: str, path: str) -> Route:
        route = self._routes.get((method.upper(), path))
        if route is not None:
            return route
        if path in self._paths:
            allowed = sorted(m for (m, p) in self._routes if p == path)
            raise HttpError(
                405, f"method {method} not allowed on {path} (allowed: {allowed})"
            )
        raise HttpError(404, f"no such endpoint: {path}")

    def routes(self) -> list[Route]:
        """Every registered route (the endpoint table, for /models and docs)."""
        return sorted(self._routes.values(), key=lambda r: (r.path, r.method))


def default_router() -> Router:
    """The serving tier's standard endpoint table."""
    from . import handlers

    router = Router()
    router.add("GET", "/healthz", "healthz", handlers.handle_healthz)
    router.add("GET", "/models", "models", handlers.handle_models)
    router.add("GET", "/stats", "stats", handlers.handle_stats)
    router.add("POST", "/score", "score", handlers.handle_score)
    router.add("POST", "/explain", "explain", handlers.handle_explain)
    router.add("POST", "/models/swap", "swap", handlers.handle_swap)
    router.add("POST", "/models/rollback", "rollback", handlers.handle_rollback)
    return router
