"""Minimal HTTP/1.1 request parsing and response rendering over asyncio streams.

The serving tier deliberately speaks a small, strict subset of HTTP/1.1 with
nothing but the standard library (the repo's no-dependencies policy): request
line + headers + ``Content-Length``-framed bodies in, status line + headers +
``Content-Length``-framed bodies out, with persistent connections
(``keep-alive``) as the default.  Everything a risk-scoring client needs —
and nothing else:

* no chunked transfer encoding (rejected with ``501``), no trailers, no
  upgrades, no multipart;
* hard limits on the request line, header block and body size, so one
  misbehaving client cannot balloon the server's memory;
* header names are case-insensitive (stored lower-cased), bodies are raw
  bytes — JSON decoding is the schema layer's job
  (:mod:`repro.serve.http.schemas`).

:class:`HttpError` is the one protocol/application error type: handlers and
parsers raise it with a status code and the server renders it as a JSON error
body.  Parse errors always close the connection (the stream position after a
malformed request is undefined); application errors keep it open.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

#: Upper bound on the request line (method + path + version), in bytes.
MAX_REQUEST_LINE_BYTES = 8192
#: Upper bound on the whole header block, in bytes.
MAX_HEADER_BYTES = 32768
#: Upper bound on a request body, in bytes (generous for batch score payloads).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Reason phrases for every status the serving tier emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error with an HTTP status; the server renders it as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split path/query, headers and raw body."""

    method: str
    path: str
    query: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Captures from ``{param}`` route segments, filled in by the dispatcher.
    path_params: dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should survive this request/response cycle."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def _read_line(reader: asyncio.StreamReader, limit: int, what: str) -> bytes:
    """One CRLF (or bare LF) terminated line, bounded by ``limit`` bytes."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, f"connection closed mid-{what}") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, f"{what} exceeds the stream buffer limit") from exc
    if len(line) > limit:
        raise HttpError(400, f"{what} longer than {limit} bytes")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one request from the stream; ``None`` on a clean end-of-stream.

    Raises :class:`HttpError` on malformed input; the caller should respond
    with the error's status and close the connection.
    """
    line = await _read_line(reader, MAX_REQUEST_LINE_BYTES, "request line")
    if not line:
        return None
    parts = line.split(b" ")
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    try:
        method = parts[0].decode("ascii")
        target = parts[1].decode("ascii")
        version = parts[2].decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError(400, "request line is not ASCII") from exc
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        header_line = await _read_line(reader, MAX_HEADER_BYTES, "header line")
        if not header_line:
            break
        header_bytes += len(header_line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, f"header block longer than {MAX_HEADER_BYTES} bytes")
        name, separator, value = header_line.partition(b":")
        if not separator:
            raise HttpError(400, "malformed header line")
        headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()

    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked transfer encoding is not supported")

    body = b""
    content_length = headers.get("content-length")
    if content_length is not None:
        try:
            length = int(content_length)
        except ValueError as exc:
            raise HttpError(400, "content-length is not an integer") from exc
        if length < 0:
            raise HttpError(400, "content-length must be non-negative")
        if length > max_body_bytes:
            raise HttpError(413, f"request body larger than {max_body_bytes} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "connection closed mid-body") from exc
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "POST requests must carry a content-length header")

    return HttpRequest(
        method=method, path=path, query=query, version=version,
        headers=headers, body=body,
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    """Serialise one response (status line, headers, body) to wire bytes."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body
