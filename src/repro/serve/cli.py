"""Command-line operations surface: ``python -m repro.serve``.

The subcommands cover the model lifecycle:

``fit``
    Fit a pipeline on a built-in workload (``--dataset``) or on CSV files
    (``--data-dir`` + ``--name`` + ``--schema``), then save it with
    :func:`~repro.serve.persistence.save_pipeline`.  The pipeline is either
    configured field by field (``--classifier``, ``--risk-metric``, ...) or
    declaratively with ``--spec spec.json`` — a
    :meth:`repro.compose.PipelineSpec.to_json` document assembled through the
    component registries, which is also how custom registered components are
    reached from the command line.  When the spec names a data backend
    (``source``) and no ``--dataset``/``--data-dir`` is given, the training
    workload comes from that backend — including the ``"blocked"`` backend,
    which blocks raw tables on the fly.
``block``
    Run the streaming blocking layer on its own: raw record tables in
    (``--data-dir`` CSV layout, a built-in ``--dataset``, or a generated
    ``--domain`` corpus), candidate id pairs out as CSV, streamed chunk by
    chunk so the candidate set is never held in memory.  The output file uses
    the :mod:`repro.data.io` pair layout, so it can be streamed back through
    ``score --chunk-size --input``.
``score``
    Load a saved pipeline, score a workload through :class:`RiskService`
    (micro-batched, cached) and print serving statistics; ``--output`` writes
    one CSV row per pair with probability, machine label and risk score.
    With ``--chunk-size N`` the workload is *streamed*: candidate pairs are
    pulled from a :class:`~repro.data.sources.PairSource` ``N`` at a time and
    scored rows are written as they are produced, so a CSV workload of any
    size scores in memory bounded by the chunk (``--input pairs.csv``
    optionally points at a specific candidate-pair file in the data
    directory; ``--source spec.json`` streams from any registered pair
    source instead — e.g. a ``"blocked"`` source that generates candidates
    from raw tables on the fly).  ``--workers N`` shards the chunks over a
    worker pool (:mod:`repro.parallel`): rows still come out in exact source
    order with bit-identical numbers, just faster on multi-core machines.
``inspect``
    Print a saved model's manifest and risk-model summary without scoring.
``explain``
    Load a saved pipeline and emit decision-level explanations (fired rules
    with portfolio weight shares, the equivalence-probability interval, the
    risk score) for the riskiest pairs of a workload, as JSON.
``resolve``
    Stream a record corpus through the online resolver
    (:mod:`repro.online`): each record is blocked against a live inverted
    index, its candidate pairs risk-scored through :class:`RiskService`, and
    every decision (merge / split / escalate by the ``--merge-threshold`` /
    ``--split-threshold`` policy) appended to an audit log — ``--events``
    mirrors it to a JSONL file that a later run (or ``http --events``)
    resumes from.
``stats``
    Pretty-print a metrics snapshot written by ``score --metrics-out`` (or by
    :meth:`repro.obs.MetricsRegistry.write_json` anywhere else): counters,
    span time totals and serving throughput at a glance.
``http``
    Serve a saved model over HTTP (:mod:`repro.serve.http`): an asyncio
    server with micro-batch request coalescing — concurrent single-pair
    ``POST /score`` requests share one kernel-warm batch (``--coalesce-batch-
    size`` / ``--linger-ms`` bound the batch size and the added latency) —
    plus ``POST /explain`` (decision-level payloads), ``GET /stats`` (the
    :mod:`repro.obs` snapshot), ``GET /healthz``, ``GET /models`` and
    ``POST /models/swap`` / ``/models/rollback`` driving the
    :class:`~repro.serve.registry.ModelRegistry` hot-swap.  Runs until
    interrupted; ``--metrics-out`` writes the final snapshot on shutdown.

``score --metrics-out metrics.json`` records the whole pass — pipeline spans
(vectorize / classify / rule_kernel / aggregate), serving counters, batch
latency histograms — into one JSON snapshot.  Recording never changes the
scores: output CSVs are byte-identical with and without it.

The CSV layout is the one of :mod:`repro.data.io` (``<name>_left.csv``,
``<name>_right.csv``, ``<name>_matches.csv``, optional ``<name>_pairs.csv``);
``--schema`` points at a JSON file in :meth:`repro.data.schema.Schema.to_dict`
format, e.g.::

    {"attributes": [{"name": "title", "type": "text"},
                    {"name": "year", "type": "numeric"}]}
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Sequence

import numpy as np

from ..classifiers.base import BaseClassifier
from ..compose import (
    PipelineSpec,
    build_pipeline,
    create_classifier,
    registered_classifiers,
    registered_risk_metrics,
)
from ..data import load_dataset, split_workload
from ..data.io import import_workload
from ..data.schema import Schema
from ..data.sources import CsvPairSource, InMemorySource, PairSource
from ..data.workload import Workload
from ..evaluation.roc import auroc_score, mislabel_indicator
from ..exceptions import DataError, ReproError
from ..obs import MetricsRegistry, use_recorder
from ..pipeline import LearnRiskPipeline
from ..risk.onesided_tree import OneSidedTreeConfig
from ..risk.training import TrainingConfig
from .persistence import load_pipeline, load_state, save_pipeline
from .service import RiskService


def _build_classifier(kind: str, seed: int, epochs: int | None) -> BaseClassifier:
    params: dict[str, object] = {}
    if epochs is not None and kind in ("mlp", "logistic"):
        params["epochs"] = epochs
    return create_classifier(kind, params, seed=seed)


def _load_schema(path: str) -> Schema:
    return Schema.from_dict(json.loads(Path(path).read_text()))


def _load_workload(args: argparse.Namespace, schema: Schema | None = None) -> Workload:
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    if args.data_dir:
        if schema is None:
            if not getattr(args, "schema", None):
                raise SystemExit("--schema is required when fitting from --data-dir")
            schema = _load_schema(args.schema)
        return import_workload(args.data_dir, args.name, schema)
    raise SystemExit("provide either --dataset or --data-dir")


#: Header of the scored-pair CSV written by ``score`` (both modes), the
#: streaming benchmark and any other writer that must stay byte-compatible.
SCORED_CSV_HEADER = ("left_id", "right_id", "probability", "machine_label", "risk_score")


def scored_csv_row(scored) -> list:
    """One scored pair as a CSV row (``repr`` floats: round-trip exact)."""
    left_id, right_id = scored.pair.pair_id
    return [left_id, right_id, repr(scored.probability),
            scored.machine_label, repr(scored.risk_score)]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _parse_ratio(text: str) -> tuple[float, float, float]:
    parts = [float(part) for part in text.split(",")]
    if len(parts) != 3:
        raise argparse.ArgumentTypeError("ratio must have three comma-separated parts")
    return (parts[0], parts[1], parts[2])


# --------------------------------------------------------------------- commands
def _cmd_fit(args: argparse.Namespace) -> int:
    if args.spec:
        # Parse and validate the spec before the (slow) workload load so a
        # typo in a config file fails immediately.
        spec = PipelineSpec.from_json(Path(args.spec).read_text())
        pipeline = build_pipeline(spec)
        if not args.dataset and not args.data_dir and spec.source is not None:
            # No workload flags: train from the spec's own data backend
            # (e.g. a "blocked" source streaming candidates from raw tables).
            from ..compose.registries import create_source

            source = create_source(spec.source.kind, spec.source.params, spec.seed)
            workload = source.materialize()
        else:
            workload = _load_workload(args)
        split = split_workload(workload, ratio=args.ratio, seed=spec.seed)
    else:
        workload = _load_workload(args)
        split = split_workload(workload, ratio=args.ratio, seed=args.seed)
        pipeline = LearnRiskPipeline(
            classifier=_build_classifier(args.classifier, args.seed, args.epochs),
            tree_config=OneSidedTreeConfig(max_depth=args.rule_depth),
            training_config=TrainingConfig(epochs=args.risk_epochs, seed=args.seed),
            risk_metric=args.risk_metric,
            seed=args.seed,
        )
    print(
        f"fitting on {len(split.train)} training / {len(split.validation)} validation pairs "
        f"({workload.name})..."
    )
    pipeline.fit(split.train, split.validation)
    directory = save_pipeline(pipeline, args.output)
    summary = pipeline.risk_model.summary()
    print(f"saved fitted pipeline to {directory}")
    print(
        f"  rules: {int(summary['n_rules'])} "
        f"({int(summary['n_matching_rules'])} matching), "
        f"final ranking loss: {summary['final_loss']:.4f}"
    )
    return 0


def _parse_component_document(text: str, label: str) -> dict:
    """A component spec given as a JSON file path or an inline JSON string."""
    path = Path(text)
    document = path.read_text() if path.is_file() else text
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"--{label} must be a JSON file or inline JSON object: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"--{label} must describe one component as a JSON object")
    return data


def _load_source(args: argparse.Namespace, schema: Schema) -> PairSource:
    """The streaming counterpart of :func:`_load_workload`.

    Backend flags resolve in the same priority order as the eager path
    (``--source`` first — it names its backend explicitly — then
    ``--dataset``, then ``--data-dir``), so adding ``--chunk-size`` to an
    existing command never changes *which* workload is scored.
    """
    if getattr(args, "source", None):
        from ..compose import ComponentSpec
        from ..compose.registries import create_source

        spec = ComponentSpec.coerce(
            _parse_component_document(args.source, "source"), "pair source"
        )
        return create_source(spec.kind, spec.params, getattr(args, "seed", 0) or 0)
    if args.dataset:
        if getattr(args, "input", None):
            raise SystemExit("--input requires --data-dir (the record tables live there)")
        return InMemorySource(load_dataset(args.dataset, scale=args.scale))
    if args.data_dir:
        return CsvPairSource(
            args.data_dir, args.name, schema, pairs_path=getattr(args, "input", None)
        )
    if getattr(args, "input", None):
        raise SystemExit("--input requires --data-dir (the record tables live there)")
    raise SystemExit("provide --dataset, --data-dir or --source")


def _metrics_registry(args: argparse.Namespace) -> MetricsRegistry | None:
    """One registry for the whole score run when ``--metrics-out`` was given.

    The same registry is installed as the global recorder (capturing the
    pipeline's spans) *and* handed to the service as its statistics sink, so
    the written snapshot carries spans, serving counters and batch histograms
    together.
    """
    return MetricsRegistry() if getattr(args, "metrics_out", None) else None


def _write_metrics(args: argparse.Namespace, metrics: MetricsRegistry | None) -> None:
    if metrics is not None:
        path = metrics.write_json(args.metrics_out)
        print(f"wrote metrics snapshot to {path}")


def _cmd_score_streaming(
    args: argparse.Namespace, pipeline, metrics: MetricsRegistry | None = None
) -> int:
    """Chunked scoring: bounded memory, scored rows written as they stream."""
    source = _load_source(args, pipeline.vectorizer.schema)
    service = RiskService(
        pipeline, max_batch_size=args.batch_size, cache_size=args.cache_size,
        metrics=metrics,
    )
    if args.repeat > 1:
        print("note: --repeat is ignored in streaming mode (one pass per run)")
    workers = _effective_workers(args, pipeline)

    writer = None
    handle = None
    output = Path(args.output) if args.output else None
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        handle = output.open("w", newline="")
        writer = csv.writer(handle)
        writer.writerow(SCORED_CSV_HEADER)

    # Per-pair scalars only: enough for the final AUROC line without ever
    # holding the RecordPair objects or metric vectors of the whole stream.
    count = 0
    machine_labels: list[int] = []
    risk_scores: list[float] = []
    ground_truth: list[int] = []
    labeled = True
    recording = use_recorder(metrics) if metrics is not None else nullcontext()
    try:
        # The service owns a worker pool in parallel mode; close it before the
        # interpreter exits so no process pool is left to atexit teardown.
        with recording, service:
            for scored in service.score_source(
                source, chunk_size=args.chunk_size, workers=args.workers
            ):
                count += 1
                if writer is not None:
                    writer.writerow(scored_csv_row(scored))
                if scored.pair.ground_truth is None:
                    labeled = False
                elif labeled:
                    machine_labels.append(scored.machine_label)
                    risk_scores.append(scored.risk_score)
                    ground_truth.append(scored.pair.ground_truth)
    finally:
        if handle is not None:
            handle.close()
    if output is not None:
        print(f"wrote {count} scored pairs to {output}")

    stats = service.stats.snapshot()
    print(
        f"scored {count} pairs from {source.name} "
        f"(streamed, chunk size {args.chunk_size}, {workers} worker(s))"
    )
    print(
        f"  throughput: {stats['pairs_per_second']:.1f} pairs/s over "
        f"{int(stats['batches'])} batches (mean batch {stats['mean_batch_size']:.1f})"
    )
    if labeled and count > 0:
        risk_labels = mislabel_indicator(
            np.asarray(machine_labels, dtype=int), np.asarray(ground_truth, dtype=int)
        )
        if 0 < risk_labels.sum() < len(risk_labels):
            auroc = auroc_score(risk_labels, np.asarray(risk_scores, dtype=float))
            print(f"  risk ranking AUROC: {auroc:.4f}")
    _write_metrics(args, metrics)
    return 0


def _effective_workers(args: argparse.Namespace, pipeline) -> int:
    """The worker count a score run will use (CLI flag, else the model's spec)."""
    if args.workers is not None:
        return args.workers
    execution = getattr(pipeline, "execution", None)
    return execution.workers if execution is not None else 1


def _cmd_score(args: argparse.Namespace) -> int:
    pipeline = load_pipeline(args.model)
    metrics = _metrics_registry(args)
    if args.chunk_size:
        return _cmd_score_streaming(args, pipeline, metrics)
    if args.input:
        raise SystemExit("--input requires --chunk-size (it selects the streamed pair file)")
    if args.source:
        raise SystemExit("--source requires --chunk-size (pair sources are streamed)")
    workload = _load_workload(args, schema=pipeline.vectorizer.schema)
    service = RiskService(
        pipeline, max_batch_size=args.batch_size, cache_size=args.cache_size,
        metrics=metrics,
    )
    workers = _effective_workers(args, pipeline)
    recording = use_recorder(metrics) if metrics is not None else nullcontext()
    results = []
    with recording, service:  # releases the multi-worker pool, if one was used
        for _ in range(args.repeat):
            results = service.score_workload(workload, workers=args.workers)

    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        with output.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(SCORED_CSV_HEADER)
            for scored in results:
                writer.writerow(scored_csv_row(scored))
        print(f"wrote {len(results)} scored pairs to {output}")

    stats = service.stats.snapshot()
    print(
        f"scored {len(results)} pairs from {workload.name} "
        f"(x{args.repeat} passes, {workers} worker(s))"
    )
    print(
        f"  throughput: {stats['pairs_per_second']:.1f} pairs/s over "
        f"{int(stats['batches'])} batches (mean batch {stats['mean_batch_size']:.1f})"
    )
    print(
        f"  vectorisation cache: {stats['cache_hit_rate']:.1%} hit rate "
        f"({int(stats['cache_hits'])} hits / {int(stats['cache_misses'])} misses)"
    )
    if workload.is_labeled and len(workload) > 0:
        machine_labels = np.array([scored.machine_label for scored in results], dtype=int)
        risk_scores = np.array([scored.risk_score for scored in results], dtype=float)
        risk_labels = mislabel_indicator(machine_labels, workload.labels())
        if 0 < risk_labels.sum() < len(risk_labels):
            print(f"  risk ranking AUROC: {auroc_score(risk_labels, risk_scores):.4f}")
    _write_metrics(args, metrics)
    return 0


def _build_block_corpus(args: argparse.Namespace):
    """The record corpus a ``block`` run reads (tables in, candidates out)."""
    from ..blocking import CsvCorpus, DatasetCorpus, GeneratedCorpus

    if args.dataset:
        return DatasetCorpus(args.dataset, scale=args.scale)
    if args.data_dir:
        if not args.schema:
            raise SystemExit("--schema is required when blocking from --data-dir")
        return CsvCorpus(args.data_dir, args.name, _load_schema(args.schema))
    if args.domain:
        from ..data.generators import GenerationConfig

        config = GenerationConfig(n_base_entities=args.entities, seed=args.seed)
        return GeneratedCorpus(
            args.domain, config=config, n_waves=args.waves, name=args.name, seed=args.seed
        )
    raise SystemExit("provide --dataset, --data-dir or --domain")


def _build_block_blocker(args: argparse.Namespace):
    """The blocker a ``block`` run applies, from the per-kind flag group."""
    from ..blocking import InvertedIndexBlocker, MinHashLSHBlocker, SortedWindowBlocker

    if args.blocker in ("inverted", "minhash"):
        if not args.attributes:
            raise SystemExit(f"--attributes is required for the {args.blocker} blocker")
        attributes = [part.strip() for part in args.attributes.split(",") if part.strip()]
        if args.blocker == "inverted":
            return InvertedIndexBlocker(
                attributes,
                min_shared=args.min_shared,
                max_token_frequency=args.max_token_frequency,
            )
        return MinHashLSHBlocker(attributes, bands=args.bands, rows=args.rows, seed=args.seed)
    if not args.key_attribute:
        raise SystemExit("--key-attribute is required for the sorted_window blocker")
    return SortedWindowBlocker(args.key_attribute, window=args.window)


def _cmd_block(args: argparse.Namespace) -> int:
    """Stream blocked candidate id pairs from raw record tables to CSV.

    Candidates are written chunk by chunk as each wave's index is probed —
    the full candidate set is never held in memory, so corpus size is bounded
    only by one wave's tables.  Recall against the corpus's ground-truth
    matches (when it has any) is tracked incrementally the same way.
    """
    from ..blocking.blockers import chunk_id_pairs
    from ..obs import get_recorder

    corpus = _build_block_corpus(args)
    blocker = _build_block_blocker(args)
    metrics = _metrics_registry(args)
    recording = use_recorder(metrics) if metrics is not None else nullcontext()

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    candidates = 0
    waves = 0
    total_matches = 0
    found_matches = 0
    with recording, output.open("w", newline="") as handle:
        recorder = get_recorder()
        writer = csv.writer(handle)
        writer.writerow(("left_id", "right_id"))
        for wave in corpus.waves():
            waves += 1
            recorder.count("blocking.waves")
            remaining = set(wave.matches)
            total_matches += len(remaining)
            for chunk in chunk_id_pairs(blocker.iter_wave_candidates(wave), args.chunk_size):
                recorder.count("blocking.candidates_emitted", len(chunk))
                writer.writerows(chunk)
                candidates += len(chunk)
                for pair in chunk:
                    remaining.discard(pair)
            found_matches += len(wave.matches) - len(remaining)

    print(
        f"blocked {corpus.name} with {blocker.name}: "
        f"{candidates} candidate pairs over {waves} wave(s) -> {output}"
    )
    if total_matches:
        print(
            f"  recall: {found_matches / total_matches:.4f} "
            f"({found_matches}/{total_matches} ground-truth matches retained)"
        )
    _write_metrics(args, metrics)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Emit decision-level explain payloads for the riskiest pairs, as JSON."""
    pipeline = load_pipeline(args.model)
    workload = _load_workload(args, schema=pipeline.vectorizer.schema)
    pairs = list(workload.pairs)
    explanations = pipeline.explain_pairs(pairs, top_rules=args.rules)
    risk_scores = np.array(
        [explanation.risk_score for explanation in explanations], dtype=float
    )
    order = np.argsort(-risk_scores, kind="stable")
    if args.top is not None:
        order = order[:args.top]
    payload = []
    for index in order:
        left_id, right_id = pairs[int(index)].pair_id
        payload.append({
            "left_id": left_id,
            "right_id": right_id,
            **explanations[int(index)].to_dict(),
        })
    document = json.dumps(payload, indent=2)
    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(document + "\n")
        print(f"wrote {len(payload)} explanations to {output}")
    else:
        print(document)
    return 0


def _resolve_policy_from_args(args: argparse.Namespace, attributes_flag: str):
    """A :class:`~repro.online.ResolutionPolicy` from the shared flag group."""
    from ..online import ResolutionPolicy

    raw = getattr(args, attributes_flag)
    attributes = tuple(part.strip() for part in raw.split(",") if part.strip())
    if not attributes:
        raise SystemExit(f"--{attributes_flag.replace('_', '-')} must name at least one attribute")
    return ResolutionPolicy(
        attributes=attributes,
        merge_threshold=args.merge_threshold,
        split_threshold=args.split_threshold,
        min_shared=args.min_shared,
        max_postings=args.max_postings,
        explain=not getattr(args, "no_explain", False),
    )


def _cmd_resolve(args: argparse.Namespace) -> int:
    """Stream a record corpus through the online resolver, decision by decision."""
    from ..online import EventLog, OnlineResolver

    pipeline = load_pipeline(args.model)
    corpus = _build_block_corpus(args)
    policy = _resolve_policy_from_args(args, "attributes")
    metrics = _metrics_registry(args)
    recording = use_recorder(metrics) if metrics is not None else nullcontext()
    service = RiskService(
        pipeline, max_batch_size=args.batch_size, cache_size=args.cache_size,
        metrics=metrics,
    )
    log = EventLog(args.events) if args.events else EventLog()
    resolver = OnlineResolver(service, policy, event_log=log)
    with recording, service:
        summary = resolver.resolve_corpus(corpus, max_waves=args.max_waves)
    state = resolver.state_dict()
    print(
        f"resolved {summary.records} records from {corpus.name} "
        f"({summary.pairs_scored} candidate pairs scored)"
    )
    print(
        f"  merges: {summary.merges}  splits: {summary.splits}  "
        f"escalations: {summary.escalations}"
    )
    print(
        f"  clusters (multi-record): {len(state['clusters'])}  "
        f"cannot-links: {len(state['cannot_links'])}"
    )
    if args.events:
        print(f"  event log: {len(resolver.log)} events -> {args.events}")
    _write_metrics(args, metrics)
    return 0


def _cmd_http(args: argparse.Namespace) -> int:
    """Serve a saved model over HTTP until interrupted."""
    import asyncio

    from .http import ServerConfig, build_server

    config = ServerConfig(
        host=args.host,
        port=args.port,
        coalesce_batch_size=args.coalesce_batch_size,
        coalesce_linger_seconds=args.linger_ms / 1000.0,
        service_batch_size=args.batch_size,
        service_cache_size=args.cache_size,
    )
    online_policy = None
    if args.resolve_attributes:
        online_policy = _resolve_policy_from_args(args, "resolve_attributes")
    server = build_server(
        args.model, model_name=args.model_name, config=config,
        online_policy=online_policy, events_path=args.events,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"serving model {args.model_name!r} from {args.model} "
            f"on http://{server.host}:{server.port}",
            flush=True,
        )
        endpoints = (
            "endpoints: GET /healthz /models /stats, "
            "POST /score /explain /models/swap /models/rollback"
        )
        if online_policy is not None:
            endpoints += (
                "; online: POST /resolve /events/revert, "
                "GET /clusters/{id} /events"
            )
        print(
            f"  coalescing: batch<= {config.coalesce_batch_size}, "
            f"linger {args.linger_ms:g}ms; " + endpoints,
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    # Pipeline spans (vectorize/classify/...) recorded while serving land in
    # the same registry the HTTP counters use, so /stats shows both.
    try:
        with use_recorder(server.metrics):
            asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    if args.metrics_out:
        path = server.metrics.write_json(args.metrics_out)
        print(f"wrote metrics snapshot to {path}")
    return 0


def _format_seconds(seconds: float) -> str:
    return f"{seconds * 1000.0:.1f}ms" if seconds < 1.0 else f"{seconds:.2f}s"


def _cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot written by ``score --metrics-out``."""
    path = Path(args.metrics)
    if not path.is_file():
        raise DataError(f"metrics snapshot {path} does not exist")
    try:
        snapshot = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DataError(f"metrics snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(snapshot, dict):
        raise DataError(f"metrics snapshot {path} is not a JSON object")
    print(f"metrics snapshot {args.metrics} (schema v{snapshot.get('version', '?')})")
    counters = snapshot.get("counters", {})
    if counters:
        print("counters:")
        for name in sorted(counters):
            value = counters[name]
            text = f"{value:.3f}" if isinstance(value, float) and value != int(value) else f"{int(value)}"
            print(f"  {name}: {text}")
    totals = snapshot.get("span_totals", {})
    if totals:
        print("time by span (leaf totals):")
        grand_total = sum(totals.values()) or 1.0
        ranked = sorted(totals.items(), key=lambda item: -item[1])
        for name, seconds in ranked[:args.spans]:
            print(f"  {name}: {_format_seconds(seconds)} ({seconds / grand_total:.1%})")
    histograms = snapshot.get("histograms", {})
    batch = histograms.get("service.batch_seconds")
    if batch and batch.get("count"):
        print(
            f"batch latency: p50 {_format_seconds(batch['p50'])}  "
            f"p95 {_format_seconds(batch['p95'])}  "
            f"p99 {_format_seconds(batch['p99'])} over {int(batch['count'])} batches"
        )
    pairs = counters.get("service.pairs_scored", 0)
    seconds = counters.get("service.scoring_seconds", 0.0)
    if pairs and seconds:
        print(f"throughput: {pairs / seconds:.1f} pairs/s ({int(pairs)} pairs)")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    state = load_state(args.model)
    manifest = json.loads((Path(args.model) / "manifest.json").read_text())
    print(f"model directory: {args.model}")
    print(f"  kind: {manifest.get('kind')}  format: v{manifest.get('format_version')}  "
          f"written by repro {manifest.get('library_version')}")
    pipeline = LearnRiskPipeline.from_state(state)
    schema = pipeline.vectorizer.schema
    print(f"  schema: {', '.join(f'{a.name}:{a.attr_type.value}' for a in schema)}")
    print(f"  metrics: {pipeline.vectorizer.n_features}")
    print(f"  classifier: {type(pipeline.classifier).__name__}")
    print(f"  risk rules: {len(pipeline.risk_features.rules)}  "
          f"risk metric: {pipeline.risk_metric}  "
          f"decision threshold: {pipeline.decision_threshold}")
    print(f"  spec: classifier={pipeline.spec.classifier.kind!r} "
          f"vectorizer={pipeline.spec.vectorizer.kind!r} "
          f"risk_features={pipeline.spec.risk_features.kind!r}")
    for description in pipeline.risk_features.describe(limit=args.rules):
        print(f"    {description}")
    return 0


# ----------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Fit, save, load and serve LearnRisk pipelines.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_workload_arguments(sub: argparse.ArgumentParser, with_schema: bool) -> None:
        sub.add_argument("--dataset", help="built-in workload name (DS, DA, AB, AG, SG)")
        sub.add_argument("--scale", type=float, default=0.3,
                         help="built-in workload scale (default 0.3)")
        sub.add_argument("--data-dir", help="directory of CSV files (repro.data.io layout)")
        sub.add_argument("--name", default="workload",
                         help="CSV workload name prefix (default 'workload')")
        if with_schema:
            sub.add_argument("--schema",
                             help="JSON schema file (Schema.to_dict format) for --data-dir")

    fit = subparsers.add_parser("fit", help="fit a pipeline and save it")
    add_workload_arguments(fit, with_schema=True)
    fit.add_argument("--output", required=True, help="model directory to write")
    fit.add_argument("--spec",
                     help="pipeline spec JSON file (PipelineSpec.to_json format); "
                          "overrides the per-field options below")
    fit.add_argument("--classifier", choices=registered_classifiers(), default="mlp")
    fit.add_argument("--epochs", type=int, default=None,
                     help="classifier training epochs (classifier-specific default)")
    fit.add_argument("--risk-epochs", type=int, default=200,
                     help="risk-model training epochs (default 200)")
    fit.add_argument("--rule-depth", type=int, default=3,
                     help="max conditions per generated rule (default 3)")
    fit.add_argument("--risk-metric", choices=registered_risk_metrics(), default="var")
    fit.add_argument("--ratio", type=_parse_ratio, default=(3.0, 2.0, 5.0),
                     help="train,validation,test split ratio (default 3,2,5)")
    fit.add_argument("--seed", type=int, default=0)
    fit.set_defaults(handler=_cmd_fit)

    block = subparsers.add_parser(
        "block", help="stream blocked candidate pairs from raw record tables to CSV"
    )
    add_workload_arguments(block, with_schema=True)
    block.add_argument("--domain",
                       help="generate the corpus from this synthetic domain "
                            "(bibliographic, product, software, song) instead of "
                            "--dataset/--data-dir")
    block.add_argument("--entities", type=_positive_int, default=400,
                       help="base entities per generated wave (default 400)")
    block.add_argument("--waves", type=_positive_int, default=1,
                       help="number of generated waves (default 1)")
    block.add_argument("--blocker", choices=("inverted", "minhash", "sorted_window"),
                       default="inverted", help="blocking strategy (default inverted)")
    block.add_argument("--attributes",
                       help="comma-separated blocking attributes (inverted/minhash)")
    block.add_argument("--min-shared", type=_positive_int, default=1,
                       help="min shared tokens for the inverted blocker (default 1)")
    block.add_argument("--max-token-frequency", type=float, default=0.1,
                       help="stop-token document-frequency cutoff (default 0.1)")
    block.add_argument("--bands", type=_positive_int, default=8,
                       help="MinHash-LSH bands (default 8)")
    block.add_argument("--rows", type=_positive_int, default=4,
                       help="MinHash rows per band (default 4)")
    block.add_argument("--window", type=_positive_int, default=5,
                       help="sorted_window neighbourhood size (default 5)")
    block.add_argument("--key-attribute",
                       help="sort-key attribute for the sorted_window blocker")
    block.add_argument("--output", required=True,
                       help="candidate-pair CSV to write (left_id,right_id rows, "
                            "streamed chunk by chunk)")
    block.add_argument("--chunk-size", type=_positive_int, default=1024,
                       help="pairs per written chunk (default 1024)")
    block.add_argument("--seed", type=int, default=0,
                       help="seed for generated corpora and the minhash blocker")
    block.add_argument("--metrics-out",
                       help="write a JSON metrics snapshot (index-build spans, "
                            "candidate counters) to this file")
    block.set_defaults(handler=_cmd_block)

    score = subparsers.add_parser("score", help="score a workload with a saved pipeline")
    add_workload_arguments(score, with_schema=False)
    score.add_argument("--model", required=True, help="saved model directory")
    score.add_argument("--output", help="CSV file for the per-pair scores")
    score.add_argument("--batch-size", type=_positive_int, default=256)
    score.add_argument("--cache-size", type=int, default=4096)
    score.add_argument("--repeat", type=_positive_int, default=1,
                       help="score the workload this many times (cache warm-up)")
    score.add_argument("--chunk-size", type=_positive_int, default=None,
                       help="stream the workload in chunks of this many pairs "
                            "(bounded-memory mode; rows are written as they score)")
    score.add_argument("--input",
                       help="candidate-pair CSV streamed instead of <name>_pairs.csv "
                            "(requires --data-dir and --chunk-size)")
    score.add_argument("--source",
                       help="pair-source component spec (JSON file or inline JSON, "
                            "{\"kind\": ..., \"params\": {...}}) streamed instead of "
                            "--dataset/--data-dir; e.g. a 'blocked' source that "
                            "generates candidates from raw tables (requires "
                            "--chunk-size)")
    score.add_argument("--workers", type=_positive_int, default=None,
                       help="score with this many pool workers (sharded, deterministic "
                            "order, bit-identical output; default: the model spec's "
                            "execution config, else 1)")
    score.add_argument("--metrics-out",
                       help="write a JSON metrics snapshot of the run (spans, "
                            "serving counters, latency histograms) to this file; "
                            "never changes the scores")
    score.set_defaults(handler=_cmd_score)

    def add_policy_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--merge-threshold", type=float, default=0.2,
                         help="auto-merge a machine match when its risk score is "
                              "at or below this (default 0.2)")
        sub.add_argument("--split-threshold", type=float, default=0.2,
                         help="auto-split a machine unmatch when its risk score is "
                              "at or below this (default 0.2)")
        sub.add_argument("--min-shared", type=_positive_int, default=1,
                         help="min shared tokens for the live blocking index "
                              "(default 1)")
        sub.add_argument("--max-postings", type=_positive_int, default=None,
                         help="prune live-index tokens past this many postings "
                              "(bounds probing on open-ended streams)")
        sub.add_argument("--events",
                         help="mirror the decision log to this JSONL file "
                              "(an existing log resumes its cluster state)")

    resolve = subparsers.add_parser(
        "resolve",
        help="stream a record corpus through the online resolver "
             "(incremental blocking, risk-thresholded merge/split/escalate, "
             "audited event log)",
    )
    add_workload_arguments(resolve, with_schema=True)
    resolve.add_argument("--domain",
                         help="generate the corpus from this synthetic domain "
                              "(bibliographic, product, software, song) instead of "
                              "--dataset/--data-dir")
    resolve.add_argument("--entities", type=_positive_int, default=400,
                         help="base entities per generated wave (default 400)")
    resolve.add_argument("--waves", type=_positive_int, default=1,
                         help="number of generated waves (default 1)")
    resolve.add_argument("--model", required=True, help="saved model directory")
    resolve.add_argument("--attributes", required=True,
                         help="comma-separated attributes the live blocking index "
                              "tokenises")
    add_policy_arguments(resolve)
    resolve.add_argument("--no-explain", action="store_true",
                         help="skip fired-rule explanations on events (faster)")
    resolve.add_argument("--max-waves", type=_positive_int, default=None,
                         help="stop after this many corpus waves")
    resolve.add_argument("--batch-size", type=_positive_int, default=256)
    resolve.add_argument("--cache-size", type=int, default=4096)
    resolve.add_argument("--seed", type=int, default=0,
                         help="seed for generated corpora")
    resolve.add_argument("--metrics-out",
                         help="write a JSON metrics snapshot (online counters, "
                              "decision latency) to this file")
    resolve.set_defaults(handler=_cmd_resolve)

    inspect = subparsers.add_parser("inspect", help="describe a saved model")
    inspect.add_argument("--model", required=True, help="saved model directory")
    inspect.add_argument("--rules", type=int, default=5,
                         help="number of rules to print (default 5)")
    inspect.set_defaults(handler=_cmd_inspect)

    explain = subparsers.add_parser(
        "explain", help="emit fired-rule explain payloads for the riskiest pairs"
    )
    add_workload_arguments(explain, with_schema=False)
    explain.add_argument("--model", required=True, help="saved model directory")
    explain.add_argument("--top", type=_positive_int, default=10,
                         help="number of riskiest pairs to explain (default 10)")
    explain.add_argument("--rules", type=_positive_int, default=None,
                         help="max fired rules per pair (default: all)")
    explain.add_argument("--output", help="write the JSON document here instead of stdout")
    explain.set_defaults(handler=_cmd_explain)

    http_cmd = subparsers.add_parser(
        "http",
        help="serve a saved model over HTTP (async, micro-batch request coalescing)",
    )
    http_cmd.add_argument("--model", required=True, help="saved model directory")
    http_cmd.add_argument("--model-name", default="default",
                          help="registry name the endpoints default to "
                               "(default 'default')")
    http_cmd.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1)")
    http_cmd.add_argument("--port", type=int, default=8080,
                          help="bind port; 0 picks an ephemeral port (default 8080)")
    http_cmd.add_argument("--batch-size", type=_positive_int, default=256,
                          help="RiskService micro-batch size (default 256)")
    http_cmd.add_argument("--cache-size", type=int, default=4096,
                          help="vectorisation LRU cache entries (default 4096)")
    http_cmd.add_argument("--coalesce-batch-size", type=_positive_int, default=64,
                          help="max single-pair requests coalesced into one "
                               "scoring batch (default 64)")
    http_cmd.add_argument("--linger-ms", type=float, default=2.0,
                          help="max milliseconds a single-pair request waits "
                               "for batch-mates (default 2.0)")
    http_cmd.add_argument("--resolve-attributes",
                          help="enable the online-resolution endpoints "
                               "(POST /resolve, GET /clusters/{id}, GET /events, "
                               "POST /events/revert) with a live blocking index "
                               "over these comma-separated attributes")
    add_policy_arguments(http_cmd)
    http_cmd.add_argument("--metrics-out",
                          help="write the final obs snapshot here on shutdown")
    http_cmd.set_defaults(handler=_cmd_http)

    stats = subparsers.add_parser(
        "stats", help="pretty-print a metrics snapshot from score --metrics-out"
    )
    stats.add_argument("--metrics", required=True,
                       help="metrics snapshot JSON written by score --metrics-out")
    stats.add_argument("--spans", type=_positive_int, default=10,
                       help="number of span totals to show (default 10)")
    stats.set_defaults(handler=_cmd_stats)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
