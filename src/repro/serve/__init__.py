"""Model persistence and the batched risk-scoring service layer.

This package turns a fitted :class:`~repro.pipeline.LearnRiskPipeline` from a
single-process object into an operable model:

* :mod:`repro.serve.persistence` — save/load fitted pipelines as JSON + npz
  (pickle-free, bit-exact round trips);
* :mod:`repro.serve.service` — :class:`RiskService`, micro-batched scoring
  with an LRU vectorisation cache and serving statistics;
* :mod:`repro.serve.registry` — :class:`ModelRegistry`, thread-safe named /
  versioned pipelines with hot-swap and rollback;
* :mod:`repro.serve.http` — the asyncio HTTP serving tier: micro-batch
  request coalescing over :class:`RiskService`, ``/score`` / ``/explain`` /
  ``/stats`` / model-control endpoints (imported on demand — see
  :func:`repro.serve.http.build_server` and the ``http`` CLI subcommand);
* :mod:`repro.serve.cli` — the ``python -m repro.serve`` fit/score/inspect/
  http operations surface.

Quick start::

    from repro import LearnRiskPipeline, load_dataset, split_workload
    from repro.serve import RiskService, load_pipeline, save_pipeline

    split = split_workload(load_dataset("DS", scale=0.3), ratio=(3, 2, 5), seed=0)
    pipeline = LearnRiskPipeline().fit(split.train, split.validation)
    save_pipeline(pipeline, "models/ds-v1")

    service = RiskService(load_pipeline("models/ds-v1"))
    for scored in service.score_workload(split.test)[:5]:
        print(scored.pair.pair_id, scored.risk_score)
"""

from .persistence import (
    load_pipeline,
    load_staged_pipeline,
    load_state,
    save_pipeline,
    save_state,
)
from .registry import ModelRegistry
from .service import PendingScore, RiskService, ScoredPair, ServiceStats, pair_key

__all__ = [
    "ModelRegistry",
    "PendingScore",
    "RiskService",
    "ScoredPair",
    "ServiceStats",
    "load_pipeline",
    "load_staged_pipeline",
    "load_state",
    "pair_key",
    "save_pipeline",
    "save_state",
]
