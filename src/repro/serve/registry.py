"""Thread-safe registry of named, versioned pipelines with hot-swap.

A production deployment serves more than one model: one per dataset, plus new
candidate versions rolled out next to the version currently taking traffic.
:class:`ModelRegistry` owns that mapping:

* every :meth:`register` (or :meth:`load` from disk) stores a pipeline under a
  ``(name, version)`` key, auto-incrementing the version when none is given;
* each name has one *active* version that :meth:`get` and :meth:`service`
  resolve by default — registering with ``activate=True`` (the default) is a
  hot-swap: the next ``service(name)`` call serves the new version while
  in-flight scoring on the old service finishes undisturbed;
* :meth:`service` lazily builds and memoises one :class:`RiskService` per
  version, so repeated lookups share the service's vectorisation cache.

All operations take a single registry lock; scoring itself happens on the
returned service outside the registry lock.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from ..exceptions import ConfigurationError
from ..compose.staged import StagedPipeline
from .persistence import load_pipeline
from .service import RiskService


class ModelRegistry:
    """Named, versioned pipelines behind one thread-safe facade.

    Parameters
    ----------
    service_options:
        Keyword arguments (``max_batch_size``, ``cache_size``) forwarded to
        every :class:`RiskService` the registry builds.
    """

    def __init__(self, **service_options: Any) -> None:
        self._service_options = dict(service_options)
        self._lock = threading.RLock()
        self._models: dict[str, dict[int, StagedPipeline]] = {}
        self._active: dict[str, int] = {}
        #: Per name, the version that was active before the last swap — what
        #: :meth:`rollback` restores.  Two consecutive rollbacks toggle.
        self._previous: dict[str, int] = {}
        self._services: dict[tuple[str, int], RiskService] = {}

    # --------------------------------------------------------------- mutation
    def register(
        self,
        name: str,
        pipeline: StagedPipeline,
        version: int | None = None,
        activate: bool = True,
    ) -> int:
        """Store ``pipeline`` under ``name``; returns the assigned version.

        With ``activate=True`` (default) the new version becomes the one
        :meth:`get` / :meth:`service` resolve — a hot-swap when the name was
        already serving an older version.
        """
        if not name:
            raise ConfigurationError("model name must be non-empty")
        with self._lock:
            versions = self._models.setdefault(name, {})
            if version is None:
                version = max(versions, default=0) + 1
            version = int(version)
            if version < 1:
                raise ConfigurationError("model version must be >= 1")
            if version in versions:
                raise ConfigurationError(
                    f"model {name!r} already has a version {version}; "
                    f"register a new version instead of overwriting"
                )
            versions[version] = pipeline
            if activate or name not in self._active:
                self._swap_active(name, version)
            return version

    def load(
        self,
        name: str,
        directory: str | Path,
        version: int | None = None,
        activate: bool = True,
    ) -> int:
        """Load a saved pipeline from ``directory`` and register it."""
        return self.register(name, load_pipeline(directory), version=version, activate=activate)

    def _swap_active(self, name: str, version: int) -> None:
        """Point ``name`` at ``version``, remembering the outgoing active version."""
        current = self._active.get(name)
        if current is not None and current != version:
            self._previous[name] = current
        self._active[name] = int(version)

    def activate(self, name: str, version: int) -> None:
        """Make ``version`` the one served for ``name`` (manual hot-swap)."""
        with self._lock:
            if version not in self._models.get(name, {}):
                raise ConfigurationError(f"model {name!r} has no version {version}")
            self._swap_active(name, int(version))

    def rollback(self, name: str) -> int:
        """Restore the version that was active before the last swap of ``name``.

        Returns the version now serving.  The rolled-back-from version stays
        registered (and becomes the new "previous", so a second rollback
        swaps forward again).  Raises
        :class:`~repro.exceptions.ConfigurationError` when ``name`` was never
        swapped or its previous version has been unregistered since.
        """
        with self._lock:
            versions = self._require_name(name)
            previous = self._previous.get(name)
            if previous is None or previous not in versions:
                raise ConfigurationError(
                    f"model {name!r} has no previous version to roll back to"
                )
            self._swap_active(name, previous)
            return previous

    def unregister(self, name: str, version: int | None = None) -> None:
        """Remove one version of ``name`` (or all of them when ``version`` is None)."""
        with self._lock:
            versions = self._require_name(name)
            if version is None:
                removed = list(versions)
            else:
                if version not in versions:
                    raise ConfigurationError(f"model {name!r} has no version {version}")
                removed = [int(version)]
            for item in removed:
                del versions[item]
                self._services.pop((name, item), None)
            if self._previous.get(name) in removed:
                self._previous.pop(name, None)
            if not versions:
                self._models.pop(name, None)
                self._active.pop(name, None)
                self._previous.pop(name, None)
            elif self._active.get(name) in removed:
                # The outgoing active version no longer exists, so it must not
                # become the rollback target — assign directly.
                self._active[name] = max(versions)
                if self._previous.get(name) == self._active[name]:
                    # Rolling back to the version already serving is a no-op;
                    # drop the degenerate history instead of offering it.
                    self._previous.pop(name, None)

    # ----------------------------------------------------------------- lookup
    def _require_name(self, name: str) -> dict[int, StagedPipeline]:
        versions = self._models.get(name)
        if not versions:
            raise ConfigurationError(
                f"unknown model {name!r}; registered models: {sorted(self._models)}"
            )
        return versions

    def _resolve(self, name: str, version: int | None) -> tuple[int, StagedPipeline]:
        versions = self._require_name(name)
        if version is None:
            version = self._active[name]
        if version not in versions:
            raise ConfigurationError(f"model {name!r} has no version {version}")
        return int(version), versions[version]

    def get(self, name: str, version: int | None = None) -> StagedPipeline:
        """Return the pipeline for ``name`` (the active version by default)."""
        with self._lock:
            return self._resolve(name, version)[1]

    def service(self, name: str, version: int | None = None) -> RiskService:
        """Return the memoised :class:`RiskService` for ``name``/``version``."""
        with self._lock:
            resolved_version, pipeline = self._resolve(name, version)
            key = (name, resolved_version)
            if key not in self._services:
                self._services[key] = RiskService(pipeline, **self._service_options)
            return self._services[key]

    # ------------------------------------------------------------- inspection
    def names(self) -> list[str]:
        """Registered model names, sorted."""
        with self._lock:
            return sorted(self._models)

    def versions(self, name: str) -> list[int]:
        """Registered versions of ``name``, ascending."""
        with self._lock:
            return sorted(self._require_name(name))

    def active_version(self, name: str) -> int:
        """The version currently served for ``name``."""
        with self._lock:
            self._require_name(name)
            return self._active[name]

    def previous_version(self, name: str) -> int | None:
        """The version :meth:`rollback` would restore (``None`` when there is none)."""
        with self._lock:
            versions = self._require_name(name)
            previous = self._previous.get(name)
            return previous if previous in versions else None

    def describe(self) -> dict[str, dict[str, object]]:
        """Snapshot of every model's versions and active version."""
        with self._lock:
            return {
                name: {
                    "versions": sorted(versions),
                    "active": self._active.get(name),
                    "previous": (
                        self._previous[name]
                        if self._previous.get(name) in versions else None
                    ),
                }
                for name, versions in self._models.items()
            }
