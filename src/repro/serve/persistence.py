"""Disk persistence of fitted pipelines: JSON + npz, no pickle.

A saved model is a directory with three files:

``manifest.json``
    The envelope: on-disk ``format_version``, the ``kind`` of the saved
    component, the library version that wrote it and the array count.  Loading
    validates this first so version mismatches fail with a clear message.
``state.json``
    The component's state dict (see :mod:`repro.serialization`) with every
    numpy array replaced by a placeholder.
``arrays.npz``
    The extracted arrays, stored losslessly with :func:`numpy.savez_compressed`
    and loaded with ``allow_pickle=False``.

The format is deliberately pickle-free: it is safe to load states from
untrusted sources (no code execution), diffable, and stable across Python and
numpy versions.  Floats stored in JSON round-trip exactly (shortest-repr), so
a reloaded pipeline reproduces its in-process scores bit for bit.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from ..compose.staged import StagedPipeline
from ..exceptions import PersistenceError
from ..pipeline import LearnRiskPipeline
from ..serialization import pack_arrays, unpack_arrays

FORMAT_VERSION = 1

MANIFEST_FILE = "manifest.json"
STATE_FILE = "state.json"
ARRAYS_FILE = "arrays.npz"
SPEC_FILE = "spec.json"


def _library_version() -> str:
    import repro

    return str(getattr(repro, "__version__", "unknown"))


def save_state(state: dict, directory: str | Path) -> Path:
    """Write a component state dict to ``directory`` as JSON + npz.

    The directory is created if needed; existing model files in it are
    overwritten.  Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    packed, arrays = pack_arrays(state)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": state.get("kind"),
        "library_version": _library_version(),
        "n_arrays": len(arrays),
    }
    (directory / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2) + "\n")
    (directory / STATE_FILE).write_text(json.dumps(packed) + "\n")
    np.savez_compressed(directory / ARRAYS_FILE, **arrays)
    return directory


def load_state(directory: str | Path) -> dict:
    """Load a component state dict written by :func:`save_state`.

    Raises
    ------
    PersistenceError
        When the directory or any of its files is missing, unparseable, or was
        written by a newer on-disk format.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise PersistenceError(f"model directory {directory} does not exist")
    manifest = _read_json(directory / MANIFEST_FILE)
    format_version = manifest.get("format_version")
    if not isinstance(format_version, int):
        raise PersistenceError(
            f"manifest in {directory} has invalid format_version {format_version!r}"
        )
    if format_version > FORMAT_VERSION:
        raise PersistenceError(
            f"model in {directory} uses on-disk format {format_version}, but this "
            f"library only reads formats <= {FORMAT_VERSION}; upgrade the library"
        )
    packed = _read_json(directory / STATE_FILE)
    arrays_path = directory / ARRAYS_FILE
    if not arrays_path.exists():
        raise PersistenceError(f"model in {directory} is missing {ARRAYS_FILE}")
    try:
        with np.load(arrays_path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise PersistenceError(f"cannot read array archive {arrays_path}: {exc}") from exc
    state = unpack_arrays(packed, arrays)
    if not isinstance(state, dict):
        raise PersistenceError(f"state file in {directory} does not contain a state dict")
    return state


def _read_json(path: Path) -> Any:
    if not path.exists():
        raise PersistenceError(f"model file {path} does not exist")
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot parse {path}: {exc}") from exc


# ------------------------------------------------------------------- pipelines
def save_pipeline(pipeline: StagedPipeline, directory: str | Path) -> Path:
    """Save a fitted pipeline (legacy facade or staged) to ``directory``.

    The pipeline must be fitted; unfitted pipelines have nothing worth saving
    and ``to_state`` raises ``NotFittedError``.  Next to the binary state the
    pipeline's :class:`~repro.compose.spec.PipelineSpec` is written as a
    human-readable ``spec.json``, so a model directory documents — and can
    re-create, via ``python -m repro.serve fit --spec`` — its own
    configuration.
    """
    directory = save_state(pipeline.to_state(), directory)
    (directory / SPEC_FILE).write_text(pipeline.spec.to_json() + "\n")
    return directory


def _checked_pipeline_state(directory: str | Path) -> dict:
    state = load_state(directory)
    if state.get("kind") != StagedPipeline.STATE_KIND:
        raise PersistenceError(
            f"model in {directory} has kind {state.get('kind')!r}, "
            f"expected {StagedPipeline.STATE_KIND!r}"
        )
    return state


def load_pipeline(directory: str | Path) -> LearnRiskPipeline:
    """Load a pipeline written by :func:`save_pipeline`.

    The reloaded pipeline reproduces the saved pipeline's ``predict_proba``
    outputs and risk scores exactly.
    """
    return LearnRiskPipeline.from_state(_checked_pipeline_state(directory))


def load_staged_pipeline(directory: str | Path) -> StagedPipeline:
    """Load a pipeline written by :func:`save_pipeline` as a bare staged core.

    Identical state, different construction surface: use this when the caller
    works with :class:`~repro.compose.staged.StagedPipeline` directly (e.g. to
    ``refit_risk_model`` on fresh validation data).
    """
    return StagedPipeline.from_state(_checked_pipeline_state(directory))
