"""Batched risk scoring around a fitted pipeline.

:class:`RiskService` is the online counterpart of
:class:`~repro.pipeline.LearnRiskPipeline.analyse`: it wraps a fitted pipeline
and scores record pairs as they arrive, the way a risk model sits in front of
a live ER classifier to triage its output for human review.

Three serving concerns are handled here:

* **Micro-batching** — :meth:`RiskService.submit` buffers pairs and scores
  them as one batch when the buffer reaches ``max_batch_size`` (or on
  :meth:`RiskService.flush`).  Batch scoring amortises the classifier forward
  pass and the portfolio aggregation over many pairs.
* **Vectorisation caching** — turning a record pair into its metric vector
  (string similarities, TF-IDF cosine, ...) dominates scoring cost and depends
  only on the pair's records, so vectors are memoised in an LRU cache keyed by
  record-pair identity.  Re-scoring a pair after a model hot-swap hits the
  cache even though the risk scores change.
* **Statistics** — the service counts pairs, batches, cache hits and scoring
  time so operators (and ``benchmarks/bench_serving_throughput.py``) can watch
  throughput and cache effectiveness.

All public methods are thread-safe; a single lock serialises scoring, which
keeps the numpy pipeline components (which are not re-entrant during a forward
pass) safe under concurrent callers.

**Multi-worker scoring.**  :meth:`RiskService.score_source` (and
:meth:`score_workload`) accept ``workers=N`` / an
:class:`~repro.parallel.config.ExecutionConfig` and route chunks through the
:class:`~repro.parallel.engine.ParallelScoringEngine`, which shards them over
a process pool (thread pool for small batches) and merges results back in
source order, bit-identical to the serial path.  The service itself is never
shipped to workers — it holds a lock and a mutable LRU cache, both of which
are process-local by design; workers rebuild the *pipeline* from its
picklable state instead.  Parallel passes therefore bypass the vectorisation
cache; the statistics count those pairs separately (``cache_bypassed``) so
the hit rate keeps describing only lookups the cache actually served.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..compose.staged import StagedPipeline
from ..data.records import RecordPair
from ..data.sources import PairSource, as_pair_source
from ..data.workload import Workload
from ..exceptions import ConfigurationError, NotFittedError
from ..obs import MetricsRegistry
from ..parallel.config import ExecutionConfig
from ..risk.model import PairRiskExplanation

#: Identity of a record pair: source + id of both sides.
PairKey = tuple[str, str, str, str]


def pair_key(pair: RecordPair) -> PairKey:
    """The cache identity of a record pair."""
    return (pair.left.source, pair.left.record_id, pair.right.source, pair.right.record_id)


@dataclass(frozen=True)
class ScoredPair:
    """One pair's serving result: classifier output plus mislabeling risk."""

    pair: RecordPair
    probability: float
    machine_label: int
    risk_score: float


class PendingScore:
    """Handle returned by :meth:`RiskService.submit` for a not-yet-scored pair.

    Calling :meth:`result` forces a flush of the service's buffer if the pair
    has not been scored yet.
    """

    def __init__(self, service: "RiskService", pair: RecordPair) -> None:
        self._service = service
        self.pair = pair
        self._result: ScoredPair | None = None

    @property
    def done(self) -> bool:
        """``True`` once the pair has been scored."""
        return self._result is not None

    def result(self) -> ScoredPair:
        """Return the scored result, flushing the service's buffer if needed."""
        if self._result is None:
            self._service.flush()
        assert self._result is not None, "flush() must resolve every buffered score"
        return self._result

    def _resolve(self, result: ScoredPair) -> None:
        self._result = result


class ServiceStats:
    """Serving counters backed by a :class:`~repro.obs.MetricsRegistry`.

    The legacy attribute surface (``stats.cache_hits``, ``stats.snapshot()``
    and friends) is unchanged, but the storage is now a metrics registry —
    pass the registry the rest of the process records into (e.g. the one
    installed with :func:`repro.obs.use_recorder`) and one JSON snapshot
    carries the serving counters next to the pipeline's span timings.  All
    counters live under the ``service.`` prefix; batch latencies additionally
    feed the ``service.batch_seconds`` histogram (p50/p95/p99 in the registry
    snapshot).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def record_batch(self, batch_size: int, seconds: float) -> None:
        # One atomic transaction: a concurrent snapshot() sees either none or
        # all of a batch's updates, so cross-counter invariants (pairs_scored
        # == sum of batch sizes, batches == batch_size histogram count) hold
        # in every snapshot, not just quiescent ones.
        self.registry.apply(
            counters={
                "service.pairs_scored": batch_size,
                "service.batches": 1,
                "service.scoring_seconds": seconds,
            },
            observations={
                "service.batch_seconds": seconds,
                "service.batch_size": batch_size,
            },
            gauge_maxima={"service.largest_batch": batch_size},
        )

    def record_cache(self, hits: int, misses: int) -> None:
        self.registry.apply(
            counters={"service.cache_hits": hits, "service.cache_misses": misses}
        )

    def record_bypass(self, pairs: int) -> None:
        """Count pairs scored without consulting the cache (parallel passes)."""
        self.registry.count("service.cache_bypassed", pairs)

    def record_corpus_entries(self, entries: int) -> None:
        """Track the vectoriser's corpus-index size as a gauge."""
        self.registry.gauge("service.corpus_index_entries", entries)

    @property
    def pairs_scored(self) -> int:
        return int(self.registry.counter_value("service.pairs_scored"))

    @property
    def batches(self) -> int:
        return int(self.registry.counter_value("service.batches"))

    @property
    def largest_batch(self) -> int:
        return int(self.registry.gauge_value("service.largest_batch"))

    @property
    def cache_hits(self) -> int:
        return int(self.registry.counter_value("service.cache_hits"))

    @property
    def cache_misses(self) -> int:
        return int(self.registry.counter_value("service.cache_misses"))

    @property
    def cache_bypassed(self) -> int:
        """Pairs scored on paths that never consulted the cache."""
        return int(self.registry.counter_value("service.cache_bypassed"))

    @property
    def corpus_index_entries(self) -> int:
        """Distinct values currently interned by the vectoriser's corpus index."""
        return int(self.registry.gauge_value("service.corpus_index_entries"))

    @property
    def scoring_seconds(self) -> float:
        return float(self.registry.counter_value("service.scoring_seconds"))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of actual vectorisation lookups served from the cache.

        Bypassing paths (multi-worker scoring, which vectorises inside the
        workers) are excluded: they never looked the pairs up, so counting
        them as misses would dilute the rate of the cache that *was* used.
        """
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def pairs_per_second(self) -> float:
        """Scored pairs per second of scoring wall-clock."""
        if self.scoring_seconds <= 0.0:
            return 0.0
        return self.pairs_scored / self.scoring_seconds

    @property
    def mean_batch_size(self) -> float:
        return self.pairs_scored / self.batches if self.batches else 0.0

    def snapshot(self) -> dict[str, float]:
        """A point-in-time copy of the counters plus derived rates.

        All values come from *one* consistent registry read
        (:meth:`~repro.obs.MetricsRegistry.values`), so a snapshot taken while
        other threads are recording batches is internally consistent: derived
        rates (mean batch size, hit rate, throughput) are computed from
        counters captured at the same instant, never from a numerator read
        before and a denominator read after a concurrent
        :meth:`record_batch`.
        """
        counters, gauges = self.registry.values()

        def counter(name: str) -> float:
            return float(counters.get(f"service.{name}", 0))

        pairs_scored = counter("pairs_scored")
        batches = counter("batches")
        cache_hits = counter("cache_hits")
        cache_misses = counter("cache_misses")
        scoring_seconds = counter("scoring_seconds")
        lookups = cache_hits + cache_misses
        return {
            "pairs_scored": pairs_scored,
            "batches": batches,
            "largest_batch": float(gauges.get("service.largest_batch", 0.0)),
            "mean_batch_size": pairs_scored / batches if batches else 0.0,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_bypassed": counter("cache_bypassed"),
            "cache_hit_rate": cache_hits / lookups if lookups else 0.0,
            "corpus_index_entries": float(gauges.get("service.corpus_index_entries", 0.0)),
            "scoring_seconds": scoring_seconds,
            "pairs_per_second": (
                pairs_scored / scoring_seconds if scoring_seconds > 0.0 else 0.0
            ),
        }


class RiskService:
    """Serve risk scores from a fitted :class:`LearnRiskPipeline`.

    Parameters
    ----------
    pipeline:
        A fitted pipeline — a :class:`~repro.pipeline.LearnRiskPipeline` or
        any :class:`~repro.compose.staged.StagedPipeline` (freshly fitted or
        loaded with :func:`repro.serve.persistence.load_pipeline`).
    max_batch_size:
        Buffered :meth:`submit` calls auto-flush at this batch size.
    cache_size:
        Maximum number of metric vectors kept in the LRU vectorisation cache;
        0 disables caching.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` the serving statistics record
        into; defaults to a private registry.  Pass the registry installed as
        the global recorder to get one combined snapshot (service counters
        plus pipeline spans) — the serve CLI's ``--metrics-out`` does exactly
        that.
    """

    def __init__(
        self,
        pipeline: StagedPipeline,
        *,
        max_batch_size: int = 256,
        cache_size: int = 4096,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not pipeline.is_fitted:
            raise NotFittedError("RiskService requires a fitted pipeline")
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        self.pipeline = pipeline
        self.max_batch_size = max_batch_size
        self.cache_size = cache_size
        self.stats = ServiceStats(metrics)
        self._lock = threading.RLock()
        self._cache: OrderedDict[PairKey, np.ndarray] = OrderedDict()
        self._buffer: list[tuple[RecordPair, PendingScore]] = []
        # Lazily-built multi-worker engines keyed by execution config, reused
        # across parallel passes so repeated score_source(workers=N) calls
        # keep their warmed pool.  One engine per config (instead of swapping
        # a single slot) so a caller with a new config can never tear down a
        # pool that another in-flight stream is still consuming.
        self._engines: dict[ExecutionConfig, object] = {}
        # Compile the rule-coverage kernel up front so the first request does
        # not pay the build cost; every batch then reuses this one kernel.
        if pipeline.risk_model is not None:
            pipeline.risk_model.features.kernel

    # ------------------------------------------------------------ vectorising
    def _vectorize(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        """Metric matrix for ``pairs``, served from the LRU cache where possible."""
        vectorizer = self.pipeline.vectorizer
        if self.cache_size == 0:
            self.stats.record_cache(hits=0, misses=len(pairs))
            return vectorizer.transform(pairs)

        rows: list[np.ndarray | None] = [None] * len(pairs)
        miss_indices: list[int] = []
        hits = 0
        for index, pair in enumerate(pairs):
            key = pair_key(pair)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                rows[index] = cached
                hits += 1
            else:
                miss_indices.append(index)
        self.stats.record_cache(hits=hits, misses=len(miss_indices))

        if miss_indices:
            # One batched transform for all misses (the vectoriser's
            # column-major path) instead of a per-pair call each.
            miss_matrix = vectorizer.transform([pairs[index] for index in miss_indices])
            for row_number, index in enumerate(miss_indices):
                # Copy the row out of the batch matrix (so the cache does not
                # pin the whole batch in memory) and freeze it: a caller
                # mutating a matrix built from cached rows can never corrupt
                # the cache.
                vector = miss_matrix[row_number].copy()
                vector.setflags(write=False)
                rows[index] = vector
                key = pair_key(pairs[index])
                self._cache[key] = vector
                self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

        if not rows:
            return np.zeros((0, vectorizer.n_features), dtype=float)
        return np.vstack(rows)

    def clear_cache(self) -> None:
        """Drop every cached metric vector and the vectoriser's corpus index.

        The corpus index is a pure cache (scores never depend on it), so
        resetting it alongside the LRU rows returns the service to its
        cold-memory footprint without touching any fitted state.
        """
        with self._lock:
            self._cache.clear()
            index = getattr(self.pipeline.vectorizer, "corpus_index", None)
            if index is not None:
                index.reset()
            self.stats.record_corpus_entries(0)

    @property
    def cache_fill(self) -> int:
        """Number of metric vectors currently cached."""
        with self._lock:
            return len(self._cache)

    # ----------------------------------------------------------------- scoring
    def _score_batch(self, pairs: Sequence[RecordPair]) -> list[ScoredPair]:
        """Score ``pairs`` as one batch (caller holds the lock)."""
        start = time.perf_counter()
        matrix = self._vectorize(pairs)
        # The pipeline owns the decision threshold (a spec field); going
        # through classify_matrix keeps serving and analyse() in agreement.
        probabilities, machine_labels = self.pipeline.classify_matrix(matrix)
        risk_scores = self.pipeline.risk_model.score(matrix, probabilities, machine_labels)
        elapsed = time.perf_counter() - start
        self.stats.record_batch(len(pairs), elapsed)
        index = getattr(self.pipeline.vectorizer, "corpus_index", None)
        if index is not None:
            self.stats.record_corpus_entries(index.entry_count)
        return [
            ScoredPair(
                pair=pair,
                probability=float(probabilities[index]),
                machine_label=int(machine_labels[index]),
                risk_score=float(risk_scores[index]),
            )
            for index, pair in enumerate(pairs)
        ]

    def score_pairs(self, pairs: Iterable[RecordPair]) -> list[ScoredPair]:
        """Score pairs immediately (independently of the submit buffer).

        Large inputs are processed in micro-batches of ``max_batch_size`` so
        memory stays bounded and batch statistics stay meaningful.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        results: list[ScoredPair] = []
        # Lock per micro-batch, not across the whole input, so concurrent
        # submit()/flush() callers are never blocked for more than one batch.
        for start in range(0, len(pairs), self.max_batch_size):
            with self._lock:
                results.extend(self._score_batch(pairs[start:start + self.max_batch_size]))
        return results

    def risk_scores(self, pairs: Iterable[RecordPair]) -> np.ndarray:
        """Risk scores only, as an array aligned with ``pairs``."""
        return np.array([scored.risk_score for scored in self.score_pairs(pairs)], dtype=float)

    def explain_pairs(
        self, pairs: Iterable[RecordPair], top_rules: int | None = None
    ) -> list[PairRiskExplanation]:
        """Decision-level explanations through the serving path.

        Vectorisation goes through the service's LRU cache (and counts in the
        statistics) exactly like scoring, so explaining recently scored pairs
        is cheap; the payloads are the same
        :class:`~repro.risk.model.PairRiskExplanation` objects the pipeline
        API returns, with risk scores bit-identical to :meth:`score_pairs`.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        with self._lock:
            matrix = self._vectorize(pairs)
            probabilities, machine_labels = self.pipeline.classify_matrix(matrix)
            return self.pipeline.risk_model.explain_pairs(
                matrix, probabilities, machine_labels, top_rules=top_rules
            )

    def score_source(
        self,
        source: PairSource | Workload,
        chunk_size: int | None = None,
        workers: int | None = None,
        execution: ExecutionConfig | None = None,
    ) -> Iterator[ScoredPair]:
        """Stream scored pairs from a source without materialising it.

        This is the out-of-core serving path: pairs are pulled from the
        source ``chunk_size`` at a time (defaults to ``max_batch_size``),
        scored in micro-batches, and yielded one by one, so peak memory is
        one chunk regardless of the source size — including unbounded
        :class:`~repro.data.sources.GeneratorSource` streams, which this
        generator consumes lazily.

        ``workers`` / ``execution`` shard the chunks over a worker pool (see
        the module docstring); scored pairs still come back in exact source
        order with bit-identical numbers, so turning parallelism on is purely
        a throughput decision.
        """
        config = self.pipeline._resolve_execution(workers, execution)
        if chunk_size is None:
            chunk_size = config.resolve_chunk_size(self.max_batch_size)
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        length_hint = None if config.workers <= 1 else StagedPipeline._length_hint(source)
        if config.resolve_backend(length_hint) != "serial":
            yield from self._score_source_parallel(source, chunk_size, config, length_hint)
            return
        for chunk in source.iter_chunks(chunk_size):
            # Chunks larger than the micro-batch size are split so batch
            # statistics keep their meaning and the lock is never held long.
            for start in range(0, len(chunk), self.max_batch_size):
                with self._lock:
                    scored = self._score_batch(chunk[start:start + self.max_batch_size])
                yield from scored

    def _parallel_engine(self, config: ExecutionConfig):
        """The service's cached scoring engine for ``config``.

        Keeping engines alive across calls means repeated parallel passes
        reuse their warmed worker pool (pipeline state shipped once, kernels
        compiled once) instead of re-paying pool startup per pass; caching
        per config means a concurrent caller with a *different* config gets
        its own engine rather than closing the pool an in-flight stream is
        still consuming.  Engines snapshot the pipeline state on first use —
        after mutating the served pipeline (e.g. ``refit_risk_model``), call
        :meth:`close` so the next pass rebuilds the workers from new state.
        """
        from ..parallel.engine import ParallelScoringEngine

        with self._lock:
            engine = self._engines.get(config)
            if engine is None:
                engine = ParallelScoringEngine(self.pipeline, config)
                self._engines[config] = engine
            return engine

    def close(self) -> None:
        """Shut down every cached multi-worker engine (idempotent)."""
        with self._lock:
            engines, self._engines = list(self._engines.values()), {}
        for engine in engines:
            engine.close()

    def __enter__(self) -> "RiskService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _score_source_parallel(
        self,
        source: PairSource | Workload,
        chunk_size: int,
        config: ExecutionConfig,
        length_hint: int | None,
    ) -> Iterator[ScoredPair]:
        """The multi-worker branch of :meth:`score_source` (same order, same numbers)."""
        engine = self._parallel_engine(config)
        results = engine.map_chunks(source.iter_chunks(chunk_size), length_hint=length_hint)
        while True:
            start = time.perf_counter()
            batch = next(results, None)
            if batch is None:
                return
            chunk, scores = batch
            elapsed = time.perf_counter() - start
            # Workers vectorise in their own processes; the parent-side LRU
            # cache is never consulted, so these pairs are counted as
            # *bypassed* — not as misses, which would dilute the hit rate of
            # lookups the cache actually served.  The stats object is shared
            # with the serial path, so updates happen under the service lock
            # like every other writer.
            with self._lock:
                self.stats.record_bypass(len(chunk))
                self.stats.record_batch(len(chunk), elapsed)
            for index, pair in enumerate(chunk):
                yield ScoredPair(
                    pair=pair,
                    probability=float(scores.probabilities[index]),
                    machine_label=int(scores.machine_labels[index]),
                    risk_score=float(scores.risk_scores[index]),
                )

    def score_workload(
        self,
        workload: Workload | PairSource,
        workers: int | None = None,
        execution: ExecutionConfig | None = None,
    ) -> list[ScoredPair]:
        """Score every pair of a workload (or bounded source) through the serving path.

        ``workers`` / ``execution`` route the whole workload through the
        multi-worker streaming path (chunked at ``max_batch_size``); the
        returned list is identical — order and numbers — to the serial one.
        """
        config = self.pipeline._resolve_execution(workers, execution)
        if isinstance(workload, PairSource):
            return list(self.score_source(workload, workers=config.workers, execution=config))
        if config.resolve_backend(len(workload.pairs)) != "serial":
            return list(self.score_source(
                as_pair_source(workload), workers=config.workers, execution=config
            ))
        return self.score_pairs(workload.pairs)

    # --------------------------------------------------------- micro-batching
    def submit(self, pair: RecordPair) -> PendingScore:
        """Buffer a pair for batched scoring; auto-flushes at ``max_batch_size``."""
        pending = PendingScore(self, pair)
        with self._lock:
            self._buffer.append((pair, pending))
            if len(self._buffer) >= self.max_batch_size:
                self._flush_locked()
        return pending

    def flush(self) -> int:
        """Score every buffered pair now; returns the number of pairs scored."""
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        if not self._buffer:
            return 0
        buffered, self._buffer = self._buffer, []
        try:
            results = self._score_batch([pair for pair, _ in buffered])
        except Exception:
            # Put the batch back so a transient scoring failure loses nothing
            # and every PendingScore can still be resolved by a later flush.
            self._buffer = buffered + self._buffer
            raise
        for (_, pending), scored in zip(buffered, results):
            pending._resolve(scored)
        return len(results)

    @property
    def pending_count(self) -> int:
        """Number of submitted pairs waiting for the next flush."""
        with self._lock:
            return len(self._buffer)
