"""The experiment harness reproducing the paper's evaluation (Section 7).

The harness mirrors the paper's experimental protocol:

1. split a workload into (classifier training : validation : test) by a ratio
   such as 3:2:5;
2. train the machine classifier (the DeepMatcher substitute) on the training
   part and label the validation and test parts;
3. generate one-sided risk features from the training part;
4. fit every risk-analysis approach (the validation part is the risk-training
   data for learnable approaches);
5. score the test part and compute ROC/AUROC against the true mislabeled
   indicator.

On top of the core comparative run it provides the out-of-distribution
protocol (Figure 10), the HoloClean comparison on sampled sub-workloads
(Figure 11), the risk-training-size sensitivity study (Figure 12) and the
scalability measurements (Figure 13).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..baselines import (
    BaseRiskScorer,
    HoloCleanBaseline,
    LearnRiskScorer,
    RiskContext,
    default_scorers,
)
from ..classifiers.base import BaseClassifier
from ..classifiers.mlp import MLPClassifier
from ..classifiers.subset import ColumnSubsetClassifier
from ..features.metric_registry import SIMILARITY
from ..data.datasets import load_dataset
from ..data.records import Record, RecordPair, Table
from ..data.schema import Schema
from ..data.sources import PairSource, as_workload
from ..data.workload import Workload, split_workload
from ..exceptions import ConfigurationError, DataError
from ..features.vectorizer import PairVectorizer
from ..risk.feature_generation import GeneratedRiskFeatures, RiskFeatureGenerator
from ..risk.onesided_tree import OneSidedTreeConfig
from ..risk.training import TrainingConfig
from .metrics import f1_score
from .roc import RocCurve, auroc_score, mislabel_indicator, roc_curve


def default_classifier_factory(seed: int = 0) -> BaseClassifier:
    """The machine classifier of record: an MLP over the basic metrics."""
    return MLPClassifier(hidden_sizes=(32, 16), epochs=60, l2=1e-5, seed=seed)


def resolve_classifier(
    classifier: "BaseClassifier | str | dict | None", seed: int = 0
) -> BaseClassifier | None:
    """Accept a classifier instance, a registry key, or a component-spec dict.

    Strings and ``{"kind": ..., "params": ...}`` mappings are resolved through
    the :mod:`repro.compose` classifier registry, so experiment entry points
    can be driven by the same declarative configuration as the pipelines.
    ``None`` passes through (callers fall back to the default factory).
    """
    if classifier is None or isinstance(classifier, BaseClassifier):
        return classifier
    # Imported lazily: repro.compose imports this package for ROC helpers.
    from ..compose.registries import create_classifier
    from ..compose.spec import ComponentSpec

    spec = ComponentSpec.coerce(classifier, "classifier")
    return create_classifier(spec.kind, spec.params, seed)


def restrict_classifier_view(
    classifier: BaseClassifier,
    vectorizer: PairVectorizer,
    metric_kind: str | None = SIMILARITY,
) -> BaseClassifier:
    """Restrict the classifier to metrics of one kind (DeepMatcher asymmetry).

    DeepMatcher learns holistic similarity from raw text and has no access to
    the explicit difference metrics that power LearnRisk's rules; restricting
    the substitute classifier to the similarity metrics preserves that
    asymmetry.  Pass ``metric_kind=None`` to give the classifier the full
    metric space.
    """
    if metric_kind is None:
        return classifier
    indices = [
        index for index, spec in enumerate(vectorizer.metrics) if spec.kind == metric_kind
    ]
    if not indices or len(indices) == len(vectorizer.metrics):
        return classifier
    return ColumnSubsetClassifier(classifier, indices)


@dataclass
class LabeledSplit:
    """A workload part with its metric matrix, classifier outputs and ground truth."""

    workload: Workload
    features: np.ndarray
    ground_truth: np.ndarray
    probabilities: np.ndarray | None = None
    machine_labels: np.ndarray | None = None

    @property
    def risk_labels(self) -> np.ndarray:
        """1 where the machine label disagrees with the ground truth."""
        if self.machine_labels is None:
            raise DataError("split has no machine labels yet")
        return mislabel_indicator(self.machine_labels, self.ground_truth)


@dataclass
class PreparedExperiment:
    """Everything shared by the risk approaches for one experimental setting."""

    dataset: str
    ratio: tuple[float, float, float]
    vectorizer: PairVectorizer
    classifier: BaseClassifier
    train: LabeledSplit
    validation: LabeledSplit
    test: LabeledSplit
    risk_features: GeneratedRiskFeatures
    classifier_f1: float
    seed: int = 0

    def context(self) -> RiskContext:
        """The fit-time context handed to every risk scorer."""
        return RiskContext(
            train_features=self.train.features,
            train_labels=self.train.ground_truth,
            validation_features=self.validation.features,
            validation_probabilities=self.validation.probabilities,
            validation_machine_labels=self.validation.machine_labels,
            validation_ground_truth=self.validation.ground_truth,
            classifier=self.classifier,
            risk_features=self.risk_features,
            seed=self.seed,
        )


@dataclass
class MethodResult:
    """One approach's risk-ranking quality on the test part."""

    name: str
    auroc: float
    scores: np.ndarray
    curve: RocCurve | None = None
    fit_seconds: float = 0.0
    score_seconds: float = 0.0


@dataclass
class ExperimentResult:
    """The outcome of one comparative experiment (one panel of Figure 9/10)."""

    dataset: str
    ratio: tuple[float, float, float]
    classifier_f1: float
    test_mislabel_rate: float
    n_rules: int
    methods: dict[str, MethodResult] = field(default_factory=dict)
    #: The mislabel indicator of the test pairs every method's scores rank.
    risk_labels: np.ndarray | None = None

    def auroc_table(self) -> dict[str, float]:
        """Mapping of approach name to AUROC, in insertion order."""
        return {name: result.auroc for name, result in self.methods.items()}

    def best_method(self) -> str:
        """Name of the approach with the highest AUROC."""
        return max(self.methods.values(), key=lambda result: result.auroc).name


def _label_split(split: LabeledSplit, classifier: BaseClassifier) -> None:
    """Attach classifier probabilities and hard labels to a split."""
    probabilities = classifier.predict_proba(split.features)
    split.probabilities = probabilities
    split.machine_labels = (probabilities >= 0.5).astype(int)


def _resolve_workload(dataset: "str | Workload | PairSource", scale: float = 1.0) -> Workload:
    """Accept a dataset name, a workload, or a (bounded) pair source.

    Sources are materialised here: the experiment protocol needs random access
    for splitting, so this is the boundary where a streamed corpus becomes an
    in-memory workload.
    """
    if isinstance(dataset, str):
        return load_dataset(dataset, scale=scale)
    return as_workload(dataset)


def prepare_experiment(
    workload: Workload | PairSource,
    ratio: tuple[float, float, float] = (3, 2, 5),
    classifier: BaseClassifier | str | dict | None = None,
    tree_config: OneSidedTreeConfig | None = None,
    vectorizer: PairVectorizer | None = None,
    classifier_metric_kind: str | None = SIMILARITY,
    seed: int = 0,
) -> PreparedExperiment:
    """Split a workload, train the classifier and generate shared risk features.

    ``workload`` may also be a bounded :class:`~repro.data.sources.PairSource`
    (e.g. a :class:`~repro.data.sources.CsvPairSource` over an exported
    corpus), which is materialised for splitting.
    """
    workload = as_workload(workload)
    if workload.left_table is None and vectorizer is None:
        raise DataError("workload has no source tables and no vectorizer was supplied")
    split = split_workload(workload, ratio=ratio, seed=seed)
    if vectorizer is None:
        vectorizer = PairVectorizer(workload.left_table.schema)
        vectorizer.fit_workload(workload)

    def as_split(part: Workload) -> LabeledSplit:
        return LabeledSplit(
            workload=part,
            features=vectorizer.transform(part.pairs),
            ground_truth=part.labels(),
        )

    train = as_split(split.train)
    validation = as_split(split.validation)
    test = as_split(split.test)

    classifier = resolve_classifier(classifier, seed) or default_classifier_factory(seed)
    classifier = restrict_classifier_view(classifier, vectorizer, classifier_metric_kind)
    classifier.fit(train.features, train.ground_truth)
    for part in (train, validation, test):
        _label_split(part, classifier)

    generator = RiskFeatureGenerator(tree_config=tree_config)
    risk_features = generator.generate(split.train, vectorizer=vectorizer)

    classifier_f1 = f1_score(test.ground_truth, test.machine_labels)
    return PreparedExperiment(
        dataset=workload.name,
        ratio=ratio,
        vectorizer=vectorizer,
        classifier=classifier,
        train=train,
        validation=validation,
        test=test,
        risk_features=risk_features,
        classifier_f1=classifier_f1,
        seed=seed,
    )


def evaluate_scorers(
    prepared: PreparedExperiment,
    scorers: Sequence[BaseRiskScorer] | None = None,
    compute_curves: bool = True,
) -> ExperimentResult:
    """Fit and score every approach on a prepared experiment."""
    scorers = list(scorers) if scorers is not None else default_scorers()
    context = prepared.context()
    test = prepared.test
    risk_labels = test.risk_labels

    result = ExperimentResult(
        dataset=prepared.dataset,
        ratio=prepared.ratio,
        classifier_f1=prepared.classifier_f1,
        test_mislabel_rate=float(np.mean(risk_labels)),
        n_rules=len(prepared.risk_features.rules),
        risk_labels=risk_labels,
    )
    for scorer in scorers:
        fit_start = time.perf_counter()
        scorer.fit(context)
        fit_seconds = time.perf_counter() - fit_start
        score_start = time.perf_counter()
        scores = scorer.score(test.features, test.probabilities, test.machine_labels)
        score_seconds = time.perf_counter() - score_start
        auroc = auroc_score(risk_labels, scores)
        curve = roc_curve(risk_labels, scores) if compute_curves else None
        result.methods[scorer.name] = MethodResult(
            name=scorer.name,
            auroc=auroc,
            scores=scores,
            curve=curve,
            fit_seconds=fit_seconds,
            score_seconds=score_seconds,
        )
    return result


def run_comparative_experiment(
    dataset: str | Workload | PairSource,
    ratio: tuple[float, float, float] = (3, 2, 5),
    scale: float = 1.0,
    scorers: Sequence[BaseRiskScorer] | None = None,
    classifier: BaseClassifier | str | dict | None = None,
    tree_config: OneSidedTreeConfig | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """One panel of Figure 9: a dataset, a split ratio, all five approaches."""
    workload = _resolve_workload(dataset, scale)
    prepared = prepare_experiment(
        workload, ratio=ratio, classifier=classifier, tree_config=tree_config, seed=seed
    )
    return evaluate_scorers(prepared, scorers=scorers)


# --------------------------------------------------------------------------- OOD
def _project_workload(
    workload: Workload, schema: Schema, rename: dict[str, str] | None = None
) -> Workload:
    """Restrict a workload to ``schema`` after renaming attributes.

    ``rename`` maps the workload's attribute names to the target names.  Pairs
    keep their ground truth; attributes absent from the source become missing.
    """
    rename = rename or {}

    def convert_record(record: Record, table_name: str) -> Record:
        values = {}
        for attribute in schema:
            source_names = [name for name, target in rename.items() if target == attribute.name]
            source_name = source_names[0] if source_names else attribute.name
            values[attribute.name] = record[source_name]
        return Record(record_id=record.record_id, values=values, source=table_name)

    left_table = Table(f"{workload.name}-left", schema)
    right_table = Table(f"{workload.name}-right", schema)
    for record in workload.left_table:
        left_table.add(convert_record(record, left_table.name))
    for record in workload.right_table:
        right_table.add(convert_record(record, right_table.name))
    pairs = [
        RecordPair(
            left=left_table[pair.left.record_id],
            right=right_table[pair.right.record_id],
            ground_truth=pair.ground_truth,
        )
        for pair in workload.pairs
    ]
    return Workload(workload.name, pairs, left_table, right_table)


def harmonise_for_ood(
    source: Workload, target: Workload, rename_source: dict[str, str] | None = None
) -> tuple[Workload, Workload, Schema]:
    """Project two workloads onto their shared attribute schema.

    ``rename_source`` maps source attribute names onto target names (e.g.
    Amazon-Google's ``title`` onto Abt-Buy's ``name``) before intersecting.
    The shared schema uses the *target* workload's attribute types.
    """
    rename_source = rename_source or {}
    source_names = {rename_source.get(name, name) for name in source.left_table.schema.names}
    shared = [
        attribute for attribute in target.left_table.schema
        if attribute.name in source_names
    ]
    if not shared:
        raise ConfigurationError(
            f"workloads {source.name!r} and {target.name!r} share no attributes"
        )
    schema = Schema(tuple(shared))
    inverse_rename = {name: rename_source.get(name, name) for name in source.left_table.schema.names}
    projected_source = _project_workload(source, schema, rename=inverse_rename)
    projected_target = _project_workload(target, schema)
    return projected_source, projected_target, schema


def run_ood_experiment(
    source_dataset: str | Workload | PairSource,
    target_dataset: str | Workload | PairSource,
    scale: float = 1.0,
    target_ratio: tuple[float, float, float] = (0, 3, 7),
    rename_source: dict[str, str] | None = None,
    scorers: Sequence[BaseRiskScorer] | None = None,
    classifier: BaseClassifier | str | dict | None = None,
    tree_config: OneSidedTreeConfig | None = None,
    classifier_metric_kind: str | None = SIMILARITY,
    seed: int = 0,
) -> ExperimentResult:
    """Out-of-distribution evaluation (Figure 10): train on one dataset, analyse another.

    The classifier and the risk features are built from the *source* workload's
    training part; the risk-training (validation) and test data come from the
    *target* workload, mirroring the paper's DA2DS and AB2AG settings.
    """
    source = _resolve_workload(source_dataset, scale)
    target = _resolve_workload(target_dataset, scale)
    source, target, schema = harmonise_for_ood(source, target, rename_source)

    vectorizer = PairVectorizer(schema)
    vectorizer.fit(source.left_table, source.right_table)

    source_split = split_workload(source, ratio=(3, 2, 5), seed=seed)
    train = LabeledSplit(
        workload=source_split.train,
        features=vectorizer.transform(source_split.train.pairs),
        ground_truth=source_split.train.labels(),
    )
    classifier = resolve_classifier(classifier, seed) or default_classifier_factory(seed)
    classifier = restrict_classifier_view(classifier, vectorizer, classifier_metric_kind)
    classifier.fit(train.features, train.ground_truth)
    _label_split(train, classifier)

    target_split = split_workload(target, ratio=target_ratio, seed=seed + 1)
    validation = LabeledSplit(
        workload=target_split.validation,
        features=vectorizer.transform(target_split.validation.pairs),
        ground_truth=target_split.validation.labels(),
    )
    test = LabeledSplit(
        workload=target_split.test,
        features=vectorizer.transform(target_split.test.pairs),
        ground_truth=target_split.test.labels(),
    )
    _label_split(validation, classifier)
    _label_split(test, classifier)

    generator = RiskFeatureGenerator(tree_config=tree_config)
    risk_features = generator.generate(source_split.train, vectorizer=vectorizer)

    prepared = PreparedExperiment(
        dataset=f"{source.name}2{target.name}",
        ratio=target_ratio,
        vectorizer=vectorizer,
        classifier=classifier,
        train=train,
        validation=validation,
        test=test,
        risk_features=risk_features,
        classifier_f1=f1_score(test.ground_truth, test.machine_labels),
        seed=seed,
    )
    return evaluate_scorers(prepared, scorers=scorers)


# ---------------------------------------------------------------- HoloClean study
def run_holoclean_comparison(
    dataset: str | Workload | PairSource,
    scale: float = 1.0,
    ratio: tuple[float, float, float] = (3, 2, 5),
    subset_size: int = 1000,
    n_subsets: int = 5,
    seed: int = 0,
    tree_config: OneSidedTreeConfig | None = None,
) -> dict[str, float]:
    """LearnRisk vs the HoloClean-style rule model on sampled test workloads (Figure 11).

    Returns the mean AUROC of each approach over ``n_subsets`` random subsets
    of the test part (each of ``subset_size`` pairs, capped at the test size).
    """
    workload = _resolve_workload(dataset, scale)
    prepared = prepare_experiment(workload, ratio=ratio, tree_config=tree_config, seed=seed)
    context = prepared.context()

    learn_risk = LearnRiskScorer()
    learn_risk.fit(context)
    holoclean = HoloCleanBaseline(max_rules=max(10, len(prepared.risk_features.rules)))
    holoclean.fit(context)

    rng = np.random.default_rng(seed)
    test = prepared.test
    subset_size = min(subset_size, len(test.workload))
    aurocs: dict[str, list[float]] = {"LearnRisk": [], "HoloClean": []}
    for _ in range(n_subsets):
        indices = rng.choice(len(test.workload), size=subset_size, replace=False)
        risk_labels = test.risk_labels[indices]
        if risk_labels.sum() == 0 or risk_labels.sum() == len(risk_labels):
            continue
        features = test.features[indices]
        probabilities = test.probabilities[indices]
        machine_labels = test.machine_labels[indices]
        for name, scorer in (("LearnRisk", learn_risk), ("HoloClean", holoclean)):
            scores = scorer.score(features, probabilities, machine_labels)
            aurocs[name].append(auroc_score(risk_labels, scores))
    return {
        name: float(np.mean(values)) if values else float("nan")
        for name, values in aurocs.items()
    }


# -------------------------------------------------------------------- sensitivity
def run_sensitivity_experiment(
    dataset: str | Workload | PairSource,
    risk_training_sizes: Sequence[float | int],
    selection: str = "random",
    scale: float = 1.0,
    seed: int = 0,
    tree_config: OneSidedTreeConfig | None = None,
    training_config: TrainingConfig | None = None,
) -> dict[str | int | float, float]:
    """AUROC of LearnRisk versus the amount of risk-training data (Figure 12).

    ``risk_training_sizes`` entries are either fractions of the workload (the
    random-sampling panels, 1 %–20 %) or absolute pair counts (the
    active-selection panels, 100–400).  ``selection`` is ``"random"`` or
    ``"active"``; active selection repeatedly picks the pairs with the most
    ambiguous classifier output from the validation pool.
    """
    if selection not in {"random", "active"}:
        raise ConfigurationError("selection must be 'random' or 'active'")
    workload = _resolve_workload(dataset, scale)
    prepared = prepare_experiment(workload, ratio=(3, 2, 5), tree_config=tree_config, seed=seed)
    validation = prepared.validation
    test = prepared.test
    risk_labels_test = test.risk_labels
    pool_size = len(validation.workload)
    ambiguity = 1.0 - np.abs(2.0 * validation.probabilities - 1.0)
    rng = np.random.default_rng(seed)

    results: dict[str | int | float, float] = {}
    for size in risk_training_sizes:
        if isinstance(size, float) and size <= 1.0:
            count = max(10, int(round(size * len(workload))))
        else:
            count = int(size)
        count = min(count, pool_size)
        if selection == "random":
            chosen = rng.choice(pool_size, size=count, replace=False)
        else:
            chosen = np.argsort(-ambiguity, kind="stable")[:count]

        scorer = LearnRiskScorer(training_config=training_config)
        context = RiskContext(
            train_features=prepared.train.features,
            train_labels=prepared.train.ground_truth,
            validation_features=validation.features[chosen],
            validation_probabilities=validation.probabilities[chosen],
            validation_machine_labels=validation.machine_labels[chosen],
            validation_ground_truth=validation.ground_truth[chosen],
            classifier=prepared.classifier,
            risk_features=prepared.risk_features,
            seed=seed,
        )
        scorer.fit(context)
        scores = scorer.score(test.features, test.probabilities, test.machine_labels)
        results[size] = auroc_score(risk_labels_test, scores)
    return results


# -------------------------------------------------------------------- scalability
def run_scalability_experiment(
    dataset: str | Workload | PairSource,
    training_sizes: Sequence[int],
    risk_training_sizes: Sequence[int],
    scale: float = 1.0,
    seed: int = 0,
    tree_config: OneSidedTreeConfig | None = None,
    training_config: TrainingConfig | None = None,
) -> dict[str, dict[int, float]]:
    """Runtime of rule generation and of risk-model training vs data size (Figure 13).

    Returns ``{"rule_generation": {size: seconds}, "risk_training": {size: seconds}}``.
    Sizes larger than the available data are clipped to what is available.
    """
    workload = _resolve_workload(dataset, scale)
    prepared = prepare_experiment(workload, ratio=(3, 2, 5), tree_config=tree_config, seed=seed)
    generator = RiskFeatureGenerator(tree_config=tree_config)

    rule_times: dict[int, float] = {}
    for size in training_sizes:
        count = min(int(size), len(prepared.train.workload))
        subset = prepared.train.workload.sample(count, seed=seed)
        start = time.perf_counter()
        generator.generate(subset, vectorizer=prepared.vectorizer)
        rule_times[int(size)] = time.perf_counter() - start

    training_times: dict[int, float] = {}
    validation = prepared.validation
    rng = np.random.default_rng(seed)
    for size in risk_training_sizes:
        count = min(int(size), len(validation.workload))
        chosen = rng.choice(len(validation.workload), size=count, replace=False)
        scorer = LearnRiskScorer(training_config=training_config)
        context = RiskContext(
            train_features=prepared.train.features,
            train_labels=prepared.train.ground_truth,
            validation_features=validation.features[chosen],
            validation_probabilities=validation.probabilities[chosen],
            validation_machine_labels=validation.machine_labels[chosen],
            validation_ground_truth=validation.ground_truth[chosen],
            classifier=prepared.classifier,
            risk_features=prepared.risk_features,
            seed=seed,
        )
        start = time.perf_counter()
        scorer.fit(context)
        training_times[int(size)] = time.perf_counter() - start

    return {"rule_generation": rule_times, "risk_training": training_times}


# --------------------------------------------------------------- parallel scaling
def run_parallel_scaling_experiment(
    dataset: str | Workload | PairSource,
    workers_grid: Sequence[int] = (1, 2, 4),
    chunk_size: int = 512,
    scale: float = 1.0,
    seed: int = 0,
    tree_config: OneSidedTreeConfig | None = None,
    classifier: BaseClassifier | str | dict | None = None,
    execution: "dict | None" = None,
) -> dict:
    """Scoring throughput of the sharded engine versus worker count.

    Fits one pipeline on the workload's train/validation parts, then analyses
    the test part through ``analyse_batches`` once per entry of
    ``workers_grid`` (chunked at ``chunk_size``), asserting along the way that
    every worker count reproduces the single-worker risk scores **bit for
    bit** — the determinism contract of :mod:`repro.parallel` measured, not
    assumed.  ``execution`` optionally overrides the pool configuration
    (backend, start method, window) for the whole grid; the per-run worker
    count always comes from the grid.

    Returns a JSON-friendly dict::

        {"dataset": ..., "n_pairs": ..., "chunk_size": ...,
         "workers": {1: {"seconds": ..., "pairs_per_second": ...,
                         "speedup": ..., "bit_identical": True}, ...}}
    """
    # Imported lazily: repro.pipeline imports this module for the default
    # classifier factory.
    from ..parallel.config import ExecutionConfig
    from ..pipeline import LearnRiskPipeline

    workload = _resolve_workload(dataset, scale)
    split = split_workload(workload, ratio=(3, 2, 5), seed=seed)
    pipeline = LearnRiskPipeline(
        classifier=resolve_classifier(classifier, seed),
        tree_config=tree_config,
        seed=seed,
    )
    pipeline.fit(split.train, split.validation)
    base_config = ExecutionConfig.coerce(execution) or ExecutionConfig()

    test = split.test
    results: dict = {
        "dataset": workload.name,
        "n_pairs": len(test),
        "chunk_size": int(chunk_size),
        "workers": {},
    }
    reference_scores: np.ndarray | None = None
    baseline_seconds: float | None = None
    for workers in workers_grid:
        start = time.perf_counter()
        reports = list(pipeline.analyse_batches(
            test, batch_size=chunk_size, workers=int(workers), execution=base_config
        ))
        seconds = time.perf_counter() - start
        scores = (
            np.concatenate([report.risk_scores for report in reports])
            if reports else np.zeros(0, dtype=float)
        )
        if reference_scores is None:
            reference_scores = scores
            baseline_seconds = seconds
        bit_identical = bool(np.array_equal(scores, reference_scores))
        if not bit_identical:
            raise DataError(
                f"parallel scoring with {workers} workers diverged from the "
                f"{workers_grid[0]}-worker reference — the determinism contract is broken"
            )
        results["workers"][int(workers)] = {
            "seconds": seconds,
            "pairs_per_second": len(test) / seconds if seconds > 0 else 0.0,
            "speedup": baseline_seconds / seconds if seconds > 0 else 0.0,
            "bit_identical": bit_identical,
        }
    return results
