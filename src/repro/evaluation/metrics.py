"""Classification quality metrics for the ER classifiers.

These are the standard binary-classification metrics used in Section 8's
active-learning experiment (F1 of the matcher) and in diagnostics: confusion
counts, precision, recall, F1 and accuracy.  Implemented from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts (positives are ground-truth matches)."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives + self.false_positives
            + self.true_negatives + self.false_negatives
        )

    def precision(self) -> float:
        """Precision of the positive (matching) class."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    def recall(self) -> float:
        """Recall of the positive (matching) class."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    def f1(self) -> float:
        """F1 of the positive (matching) class."""
        precision = self.precision()
        recall = self.recall()
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def accuracy(self) -> float:
        """Overall label accuracy."""
        if self.total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / self.total

    def mislabel_rate(self) -> float:
        """Fraction of pairs mislabeled by the classifier (the risk-analysis positives)."""
        if self.total == 0:
            return 0.0
        return (self.false_positives + self.false_negatives) / self.total


def confusion_matrix(ground_truth: np.ndarray, predictions: np.ndarray) -> ConfusionMatrix:
    """Build the binary confusion matrix of ``predictions`` against ``ground_truth``."""
    ground_truth = np.asarray(ground_truth, dtype=int)
    predictions = np.asarray(predictions, dtype=int)
    if ground_truth.shape != predictions.shape:
        raise DataError("ground truth and predictions must have the same shape")
    true_positives = int(np.sum((ground_truth == 1) & (predictions == 1)))
    false_positives = int(np.sum((ground_truth == 0) & (predictions == 1)))
    true_negatives = int(np.sum((ground_truth == 0) & (predictions == 0)))
    false_negatives = int(np.sum((ground_truth == 1) & (predictions == 0)))
    return ConfusionMatrix(true_positives, false_positives, true_negatives, false_negatives)


def precision_score(ground_truth: np.ndarray, predictions: np.ndarray) -> float:
    """Precision of the matching class."""
    return confusion_matrix(ground_truth, predictions).precision()


def recall_score(ground_truth: np.ndarray, predictions: np.ndarray) -> float:
    """Recall of the matching class."""
    return confusion_matrix(ground_truth, predictions).recall()


def f1_score(ground_truth: np.ndarray, predictions: np.ndarray) -> float:
    """F1 of the matching class (the matcher quality metric of Figure 14)."""
    return confusion_matrix(ground_truth, predictions).f1()


def recall_at_budget(risk_labels: np.ndarray, risk_scores: np.ndarray, budget: int) -> float:
    """Fraction of mislabeled pairs found when inspecting the ``budget`` riskiest pairs.

    This is the operational payoff of risk analysis (machine + human
    collaboration): how many of the classifier's mistakes a human verifier
    catches by checking only the highest-risk pairs.
    """
    risk_labels = np.asarray(risk_labels, dtype=int)
    risk_scores = np.asarray(risk_scores, dtype=float)
    if risk_labels.shape != risk_scores.shape:
        raise DataError("risk labels and scores must have the same shape")
    total_mislabeled = int(risk_labels.sum())
    if total_mislabeled == 0:
        return 1.0
    budget = max(0, min(budget, len(risk_labels)))
    top = np.argsort(-risk_scores, kind="stable")[:budget]
    return float(risk_labels[top].sum() / total_mislabeled)
