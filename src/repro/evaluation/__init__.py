"""Evaluation: ROC/AUROC, classifier metrics, the experiment harness and reporting."""

from .experiment import (
    ExperimentResult,
    LabeledSplit,
    MethodResult,
    PreparedExperiment,
    default_classifier_factory,
    evaluate_scorers,
    harmonise_for_ood,
    prepare_experiment,
    run_comparative_experiment,
    run_holoclean_comparison,
    run_ood_experiment,
    run_scalability_experiment,
    run_sensitivity_experiment,
)
from .metrics import (
    ConfusionMatrix,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_at_budget,
    recall_score,
)
from .reporting import (
    format_auroc_map,
    format_comparative_results,
    format_series,
    format_table,
    summarise_result,
)
from .roc import RocCurve, auroc_score, mislabel_indicator, roc_curve

__all__ = [
    "ConfusionMatrix",
    "ExperimentResult",
    "LabeledSplit",
    "MethodResult",
    "PreparedExperiment",
    "RocCurve",
    "auroc_score",
    "confusion_matrix",
    "default_classifier_factory",
    "evaluate_scorers",
    "f1_score",
    "format_auroc_map",
    "format_comparative_results",
    "format_series",
    "format_table",
    "harmonise_for_ood",
    "mislabel_indicator",
    "precision_score",
    "prepare_experiment",
    "recall_at_budget",
    "recall_score",
    "roc_curve",
    "run_comparative_experiment",
    "run_holoclean_comparison",
    "run_ood_experiment",
    "run_scalability_experiment",
    "run_sensitivity_experiment",
    "summarise_result",
]
