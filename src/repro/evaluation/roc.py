"""ROC curves and AUROC (Section 3).

In risk analysis a *positive* is a mislabeled pair and a *negative* is a
correctly labeled pair; a risk model scores every pair and the ROC curve plots
the true-positive rate against the false-positive rate as the score threshold
sweeps.  AUROC is the probability that a randomly chosen mislabeled pair is
scored higher than a randomly chosen correctly labeled pair — the paper's
headline metric.  Implemented from scratch (no scikit-learn available).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError


@dataclass(frozen=True)
class RocCurve:
    """An ROC curve: matched arrays of false- and true-positive rates."""

    false_positive_rate: np.ndarray
    true_positive_rate: np.ndarray
    thresholds: np.ndarray

    @property
    def auroc(self) -> float:
        """Area under the curve by the trapezoidal rule."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.true_positive_rate, self.false_positive_rate))


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> RocCurve:
    """Compute the ROC curve of ``scores`` against binary ``labels``.

    Parameters
    ----------
    labels:
        1 for positives (mislabeled pairs), 0 for negatives.
    scores:
        Higher scores should indicate positives.
    """
    labels = np.asarray(labels, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise DataError("labels and scores must have the same shape")
    if len(labels) == 0:
        raise DataError("cannot compute an ROC curve on empty input")

    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order]

    # Cumulative counts at each distinct threshold (last index of each score run).
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    threshold_indices = np.concatenate([distinct, [len(sorted_scores) - 1]])

    cumulative_positives = np.cumsum(sorted_labels)[threshold_indices]
    cumulative_negatives = (threshold_indices + 1) - cumulative_positives

    total_positives = int(labels.sum())
    total_negatives = len(labels) - total_positives
    if total_positives == 0 or total_negatives == 0:
        raise DataError("ROC requires at least one positive and one negative example")

    true_positive_rate = np.concatenate([[0.0], cumulative_positives / total_positives])
    false_positive_rate = np.concatenate([[0.0], cumulative_negatives / total_negatives])
    thresholds = np.concatenate([[np.inf], sorted_scores[threshold_indices]])
    return RocCurve(false_positive_rate, true_positive_rate, thresholds)


def auroc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """AUROC computed by the rank (Mann–Whitney U) formulation with tie handling."""
    labels = np.asarray(labels, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise DataError("labels and scores must have the same shape")
    total_positives = int(labels.sum())
    total_negatives = len(labels) - total_positives
    if total_positives == 0 or total_negatives == 0:
        raise DataError("AUROC requires at least one positive and one negative example")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    # Average ranks over ties so tied scores contribute 0.5.
    ranks[order] = np.arange(1, len(scores) + 1, dtype=float)
    position = 0
    while position < len(sorted_scores):
        end = position
        while end + 1 < len(sorted_scores) and sorted_scores[end + 1] == sorted_scores[position]:
            end += 1
        if end > position:
            tied_indices = order[position:end + 1]
            ranks[tied_indices] = float(position + end + 2) / 2.0
        position = end + 1
    positive_rank_sum = float(ranks[labels == 1].sum())
    u_statistic = positive_rank_sum - total_positives * (total_positives + 1) / 2.0
    return u_statistic / (total_positives * total_negatives)


def mislabel_indicator(machine_labels: np.ndarray, ground_truth: np.ndarray) -> np.ndarray:
    """The risk-analysis label vector: 1 when the machine label is wrong."""
    machine_labels = np.asarray(machine_labels, dtype=int)
    ground_truth = np.asarray(ground_truth, dtype=int)
    if machine_labels.shape != ground_truth.shape:
        raise DataError("machine labels and ground truth must have the same shape")
    return (machine_labels != ground_truth).astype(int)
