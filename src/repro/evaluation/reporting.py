"""Plain-text reporting of experiment results.

The benchmark harness prints the same rows/series the paper reports — AUROC per
approach per workload, sensitivity curves, runtime series — as fixed-width text
tables so results are readable in CI logs and easy to diff against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .experiment import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], float_precision: int = 3
) -> str:
    """Render a fixed-width text table."""

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_precision}f}"
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rendered_rows
    ]
    return "\n".join([line, separator, *body])


def format_comparative_results(results: Sequence[ExperimentResult]) -> str:
    """Figure-9 style table: one row per (dataset, ratio), one column per approach."""
    if not results:
        return "(no results)"
    method_names = list(results[0].methods)
    headers = ["dataset", "ratio", "classifier F1", "mislabel rate", *method_names]
    rows = []
    for result in results:
        ratio = ":".join(str(int(round(part * 10))) for part in result.ratio) \
            if max(result.ratio) <= 1 else ":".join(str(int(part)) for part in result.ratio)
        row: list[object] = [result.dataset, ratio, result.classifier_f1, result.test_mislabel_rate]
        row.extend(result.methods[name].auroc for name in method_names)
        rows.append(row)
    return format_table(headers, rows)


def format_auroc_map(title: str, aurocs: Mapping[str, float]) -> str:
    """Small two-column table of approach → AUROC."""
    rows = [[name, value] for name, value in aurocs.items()]
    return f"{title}\n" + format_table(["approach", "AUROC"], rows)


def format_series(title: str, series: Mapping[object, float], value_name: str = "value") -> str:
    """One-parameter sweep (sensitivity, scalability) as a two-column table."""
    rows = [[str(key), value] for key, value in series.items()]
    return f"{title}\n" + format_table(["parameter", value_name], rows)


def summarise_result(result: ExperimentResult) -> dict[str, object]:
    """Flatten an :class:`ExperimentResult` into a plain dict (for EXPERIMENTS.md)."""
    summary: dict[str, object] = {
        "dataset": result.dataset,
        "ratio": result.ratio,
        "classifier_f1": round(result.classifier_f1, 3),
        "test_mislabel_rate": round(result.test_mislabel_rate, 4),
        "n_rules": result.n_rules,
    }
    for name, method in result.methods.items():
        summary[f"auroc_{name}"] = round(method.auroc, 3)
    return summary
