"""Low-level helpers of the ``to_state`` / ``from_state`` persistence protocol.

Every fitted component of the library (vectoriser, classifiers, risk rules,
risk model, pipeline) can export its state as a *state dict*: a nested
structure of JSON-safe values (``dict`` / ``list`` / ``str`` / ``int`` /
``float`` / ``bool`` / ``None``) in which numpy arrays may appear as leaves.
Each state dict carries a ``kind`` tag identifying the component class and a
``version`` integer identifying the layout, so that loading can fail loudly on
corrupted or incompatible states instead of silently misbehaving.

This module provides the shared plumbing:

* :func:`component_state` / :func:`require_state` — stamp and validate the
  ``kind`` / ``version`` envelope;
* :func:`pack_arrays` / :func:`unpack_arrays` — split a state dict into a pure
  JSON document plus a ``{key: ndarray}`` mapping (and back), which is how
  :mod:`repro.serve.persistence` stores states as ``state.json`` + an ``.npz``
  archive without ever touching pickle;
* :func:`dataclass_from_dict` — tolerant dataclass reconstruction that ignores
  unknown keys, so old states keep loading after a config grows a field.

Python's ``json`` round-trips ``float`` values through their shortest ``repr``,
which is exact for IEEE-754 doubles; together with the lossless ``.npz`` array
storage this makes a saved model reproduce its in-process scores bit for bit.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

import numpy as np

from .exceptions import PersistenceError

#: Placeholder key marking an extracted numpy array inside a packed state.
ARRAY_TOKEN = "__ndarray__"
#: Escape key wrapping user mappings that would be mistaken for a placeholder.
ESCAPE_TOKEN = "__ndarray_escape__"
_RESERVED_KEYS = frozenset({ARRAY_TOKEN, ESCAPE_TOKEN})


def component_state(kind: str, version: int, payload: Mapping[str, Any]) -> dict[str, Any]:
    """Wrap ``payload`` in the standard ``kind`` / ``version`` envelope."""
    state: dict[str, Any] = {"kind": kind, "version": version}
    state.update(payload)
    return state


def require_state(state: Any, kind: str, version: int) -> dict[str, Any]:
    """Validate a state dict's envelope and return it.

    Raises
    ------
    PersistenceError
        If ``state`` is not a mapping, its ``kind`` does not match, or its
        ``version`` is newer than what this library understands.
    """
    if not isinstance(state, Mapping):
        raise PersistenceError(
            f"expected a state mapping for kind {kind!r}, got {type(state).__name__}"
        )
    found_kind = state.get("kind")
    if found_kind != kind:
        raise PersistenceError(f"state kind mismatch: expected {kind!r}, found {found_kind!r}")
    found_version = state.get("version")
    if not isinstance(found_version, int) or found_version < 1:
        raise PersistenceError(f"state for {kind!r} has invalid version {found_version!r}")
    if found_version > version:
        raise PersistenceError(
            f"state for {kind!r} has version {found_version}, but this library "
            f"only understands versions <= {version}; upgrade the library to load it"
        )
    return dict(state)


def state_field(state: Mapping[str, Any], key: str, kind: str) -> Any:
    """Return ``state[key]`` or raise a clear :class:`PersistenceError`."""
    try:
        return state[key]
    except KeyError as exc:
        raise PersistenceError(f"state for {kind!r} is missing required field {key!r}") from exc


# ----------------------------------------------------------------- array packing
def pack_arrays(state: Any, prefix: str = "a") -> tuple[Any, dict[str, np.ndarray]]:
    """Replace every ndarray leaf of ``state`` with a placeholder.

    Returns the JSON-safe structure and the ``{key: array}`` mapping the
    placeholders refer to.  Tuples are converted to lists (as JSON would).
    """
    arrays: dict[str, np.ndarray] = {}
    counter = [0]

    def walk(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            key = f"{prefix}{counter[0]}"
            counter[0] += 1
            arrays[key] = value
            return {ARRAY_TOKEN: key}
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, Mapping):
            packed = {str(k): walk(v) for k, v in value.items()}
            # A user mapping whose single key is a reserved token (e.g. an
            # IDF table containing the literal token "__ndarray__") would be
            # indistinguishable from a placeholder; wrap it so unpacking can
            # tell them apart.
            if len(packed) == 1 and next(iter(packed)) in _RESERVED_KEYS:
                return {ESCAPE_TOKEN: packed}
            return packed
        if isinstance(value, (list, tuple)):
            return [walk(item) for item in value]
        if value is None or isinstance(value, (str, int, float, bool)):
            return value
        raise PersistenceError(
            f"state contains a non-serialisable value of type {type(value).__name__}"
        )

    return walk(state), arrays


def unpack_arrays(state: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`pack_arrays`: re-inflate array placeholders."""

    def walk(value: Any) -> Any:
        if isinstance(value, Mapping):
            if set(value.keys()) == {ARRAY_TOKEN}:
                key = value[ARRAY_TOKEN]
                try:
                    return np.asarray(arrays[key])
                except (KeyError, TypeError) as exc:
                    raise PersistenceError(
                        f"state references missing array {key!r}; the archive is corrupted"
                    ) from exc
            if set(value.keys()) == {ESCAPE_TOKEN}:
                inner = value[ESCAPE_TOKEN]
                if not isinstance(inner, Mapping):
                    raise PersistenceError("corrupted escape wrapper in state")
                return {k: walk(v) for k, v in inner.items()}
            return {k: walk(v) for k, v in value.items()}
        if isinstance(value, list):
            return [walk(item) for item in value]
        return value

    return walk(state)


def as_float_array(value: Any, field: str, kind: str) -> np.ndarray:
    """Coerce a state leaf to a float ndarray with a clear error on failure."""
    if not isinstance(value, np.ndarray):
        raise PersistenceError(f"state for {kind!r} field {field!r} is not an array")
    return np.asarray(value, dtype=float)


def dataclass_from_dict(cls: type, values: Mapping[str, Any]) -> Any:
    """Instantiate a dataclass from a mapping, ignoring unknown keys.

    Unknown keys are tolerated so that states written by a newer library (with
    extra config fields) still load; missing keys fall back to the dataclass
    defaults.
    """
    if not isinstance(values, Mapping):
        raise PersistenceError(
            f"expected a mapping to build {cls.__name__}, got {type(values).__name__}"
        )
    known = {field.name for field in dataclasses.fields(cls)}
    kwargs = {key: value for key, value in values.items() if key in known}
    return cls(**kwargs)
