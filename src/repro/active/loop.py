"""The ER active-learning loop (Section 8, Figure 14).

Starting from a small labeled seed, the loop repeatedly (1) trains the matcher
on the labeled set, (2) scores the unlabeled pool with a selection strategy,
(3) labels the top batch (using the ground truth as the oracle) and (4) records
the matcher's F1 on the held-out test set.  Running the loop with
LeastConfidence, Entropy and the LearnRisk strategy reproduces the label-
efficiency comparison of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..baselines.base import RiskContext
from ..classifiers.base import BaseClassifier
from ..classifiers.logistic import LogisticRegressionClassifier
from ..data.workload import Workload, split_workload
from ..evaluation.metrics import f1_score
from ..exceptions import ConfigurationError
from ..features.vectorizer import PairVectorizer
from ..risk.feature_generation import RiskFeatureGenerator
from ..risk.onesided_tree import OneSidedTreeConfig
from .strategies import SelectionStrategy


@dataclass
class ActiveLearningResult:
    """The learning curve of one strategy: F1 after each labeling round."""

    strategy: str
    labeled_sizes: list[int] = field(default_factory=list)
    f1_scores: list[float] = field(default_factory=list)

    def as_series(self) -> dict[int, float]:
        """Return ``{labeled size: F1}`` (the Figure 14 series)."""
        return dict(zip(self.labeled_sizes, self.f1_scores))

    def final_f1(self) -> float:
        """F1 after the last round."""
        return self.f1_scores[-1] if self.f1_scores else 0.0


def default_active_classifier(seed: int = 0) -> BaseClassifier:
    """Fast classifier retrained at every round (logistic regression)."""
    return LogisticRegressionClassifier(epochs=200, seed=seed)


class ActiveLearningLoop:
    """Pool-based active learning for ER.

    Parameters
    ----------
    strategy:
        The instance-selection strategy.
    classifier_factory:
        Called every round to create a fresh classifier (retraining from
        scratch, as in the paper's experiment).
    initial_labeled:
        Size of the random seed labeled set (|L| = 128 in the paper).
    batch_size:
        Labels acquired per round (64 in the paper).
    rounds:
        Number of acquisition rounds.
    tree_config:
        Rule-generation configuration for the LearnRisk strategy.
    seed:
        Seed for the initial sample and tie-breaking.
    """

    def __init__(
        self,
        strategy: SelectionStrategy,
        classifier_factory: Callable[[int], BaseClassifier] | None = None,
        initial_labeled: int = 128,
        batch_size: int = 64,
        rounds: int = 8,
        tree_config: OneSidedTreeConfig | None = None,
        seed: int = 0,
    ) -> None:
        if initial_labeled < 2 or batch_size < 1 or rounds < 1:
            raise ConfigurationError("invalid active-learning sizes")
        self.strategy = strategy
        self.classifier_factory = classifier_factory or default_active_classifier
        self.initial_labeled = initial_labeled
        self.batch_size = batch_size
        self.rounds = rounds
        self.tree_config = tree_config
        self.seed = seed

    def run(self, workload: Workload, test_fraction: float = 0.4) -> ActiveLearningResult:
        """Run the loop on a workload; returns the strategy's learning curve."""
        split = split_workload(
            workload, ratio=(1.0 - test_fraction, 0.0, test_fraction), seed=self.seed
        )
        pool_workload, test_workload = split.train, split.test

        # Fit the vectorizer on the pool split only: TF-IDF document
        # frequencies computed over the full workload would leak the held-out
        # test pairs into every evaluated F1 point.
        vectorizer = PairVectorizer(workload.left_table.schema)
        vectorizer.fit_workload(pool_workload)
        pool_features = vectorizer.transform(pool_workload.pairs)
        pool_labels = pool_workload.labels()
        test_features = vectorizer.transform(test_workload.pairs)
        test_labels = test_workload.labels()

        rng = np.random.default_rng(self.seed)
        labeled_mask = np.zeros(len(pool_features), dtype=bool)
        initial = min(self.initial_labeled, len(pool_features))
        # Seed with a stratified sample so both classes are present from the start.
        for label, class_indices, take in self._stratified_takes(pool_labels, initial):
            labeled_mask[rng.choice(class_indices, size=take, replace=False)] = True

        result = ActiveLearningResult(strategy=self.strategy.name)
        for round_index in range(self.rounds + 1):
            labeled_indices = np.nonzero(labeled_mask)[0]
            classifier = self.classifier_factory(self.seed + round_index)
            classifier.fit(pool_features[labeled_indices], pool_labels[labeled_indices])
            test_predictions = classifier.predict(test_features)
            result.labeled_sizes.append(int(labeled_mask.sum()))
            result.f1_scores.append(f1_score(test_labels, test_predictions))

            if round_index == self.rounds or labeled_mask.all():
                break

            unlabeled_indices = np.nonzero(~labeled_mask)[0]
            unlabeled_features = pool_features[unlabeled_indices]
            unlabeled_probabilities = classifier.predict_proba(unlabeled_features)
            context = self._build_context(
                classifier, pool_workload, vectorizer,
                pool_features, pool_labels, labeled_indices,
            )
            selected = self.strategy.select(
                self.batch_size, unlabeled_features, unlabeled_probabilities, context
            )
            labeled_mask[unlabeled_indices[selected]] = True
        return result

    @staticmethod
    def _stratified_takes(
        pool_labels: np.ndarray, initial: int
    ) -> list[tuple[int, np.ndarray, int]]:
        """Per-class seed sizes: proportional, at least one, never more than
        ``initial`` in total.

        The proportional ``max(1, round(...))`` per class can overshoot the
        budget (e.g. two classes both rounding up), so any excess is trimmed
        from the largest class first while keeping one seed per present class.
        """
        takes: list[tuple[int, np.ndarray, int]] = []
        for label in (0, 1):
            class_indices = np.nonzero(pool_labels == label)[0]
            if not len(class_indices):
                continue
            take = max(1, int(round(initial * len(class_indices) / len(pool_labels))))
            takes.append((label, class_indices, min(take, len(class_indices))))
        excess = sum(take for _, _, take in takes) - initial
        while excess > 0:
            position = max(range(len(takes)), key=lambda i: takes[i][2])
            label, class_indices, take = takes[position]
            if take <= 1:
                break  # every present class keeps at least one seed
            trimmed = min(excess, take - 1)
            takes[position] = (label, class_indices, take - trimmed)
            excess -= trimmed
        return takes

    def _build_context(
        self,
        classifier: BaseClassifier,
        pool_workload: Workload,
        vectorizer: PairVectorizer,
        pool_features: np.ndarray,
        pool_labels: np.ndarray,
        labeled_indices: np.ndarray,
    ) -> RiskContext:
        """Context for risk-based selection: the labeled set doubles as risk-training data."""
        labeled_workload = pool_workload.subset([int(i) for i in labeled_indices])
        generator = RiskFeatureGenerator(tree_config=self.tree_config)
        risk_features = generator.generate(labeled_workload, vectorizer=vectorizer)
        labeled_features = pool_features[labeled_indices]
        labeled_probabilities = classifier.predict_proba(labeled_features)
        return RiskContext(
            train_features=labeled_features,
            train_labels=pool_labels[labeled_indices],
            validation_features=labeled_features,
            validation_probabilities=labeled_probabilities,
            validation_machine_labels=(labeled_probabilities >= 0.5).astype(int),
            validation_ground_truth=pool_labels[labeled_indices],
            classifier=classifier,
            risk_features=risk_features,
            seed=self.seed,
        )


def run_active_learning_comparison(
    workload: Workload,
    strategies: list[SelectionStrategy],
    initial_labeled: int = 128,
    batch_size: int = 64,
    rounds: int = 6,
    seed: int = 0,
) -> dict[str, ActiveLearningResult]:
    """Run the loop once per strategy on the same workload (Figure 14)."""
    results = {}
    for strategy in strategies:
        loop = ActiveLearningLoop(
            strategy=strategy,
            initial_labeled=initial_labeled,
            batch_size=batch_size,
            rounds=rounds,
            seed=seed,
        )
        results[strategy.name] = loop.run(workload)
    return results
