"""Instance-selection strategies for ER active learning (Section 8).

Each strategy scores the unlabeled pool and the active-learning loop labels the
highest-scoring batch.  The paper compares the classic uncertainty strategies
(LeastConfidence and Entropy over the classifier output) with selection by
LearnRisk's risk score, and finds that risk-based selection reaches a given F1
with fewer labels.
"""

from __future__ import annotations

import abc

import numpy as np

from ..baselines.base import RiskContext
from ..baselines.learnrisk import LearnRiskScorer
from ..risk.training import TrainingConfig


class SelectionStrategy(abc.ABC):
    """Scores pool instances; higher scores are selected first."""

    name: str = "strategy"

    @abc.abstractmethod
    def scores(
        self,
        pool_features: np.ndarray,
        pool_probabilities: np.ndarray,
        context: RiskContext | None = None,
    ) -> np.ndarray:
        """Return one selection score per pool instance."""

    def select(
        self,
        batch_size: int,
        pool_features: np.ndarray,
        pool_probabilities: np.ndarray,
        context: RiskContext | None = None,
    ) -> np.ndarray:
        """Indices of the ``batch_size`` highest-scoring pool instances."""
        scores = self.scores(pool_features, pool_probabilities, context)
        batch_size = min(batch_size, len(scores))
        return np.argsort(-scores, kind="stable")[:batch_size]


class LeastConfidenceStrategy(SelectionStrategy):
    """Select the instances whose predicted class has the lowest confidence."""

    name = "LeastConfidence"

    def scores(
        self,
        pool_features: np.ndarray,
        pool_probabilities: np.ndarray,
        context: RiskContext | None = None,
    ) -> np.ndarray:
        probabilities = np.asarray(pool_probabilities, dtype=float)
        confidence = np.maximum(probabilities, 1.0 - probabilities)
        return 1.0 - confidence


class EntropyStrategy(SelectionStrategy):
    """Select the instances with the highest predictive entropy."""

    name = "Entropy"

    def scores(
        self,
        pool_features: np.ndarray,
        pool_probabilities: np.ndarray,
        context: RiskContext | None = None,
    ) -> np.ndarray:
        probabilities = np.clip(np.asarray(pool_probabilities, dtype=float), 1e-12, 1.0 - 1e-12)
        return -(
            probabilities * np.log(probabilities)
            + (1.0 - probabilities) * np.log(1.0 - probabilities)
        )


class RiskStrategy(SelectionStrategy):
    """Select the instances LearnRisk considers most at risk of being mislabeled.

    A LearnRisk model is (re)fitted from the supplied context at every call so
    that the risk model tracks the evolving classifier, exactly as the paper's
    active-learning experiment retrains per iteration.
    """

    name = "LearnRisk"

    def __init__(self, training_config: TrainingConfig | None = None) -> None:
        self.training_config = training_config or TrainingConfig(epochs=100)

    def scores(
        self,
        pool_features: np.ndarray,
        pool_probabilities: np.ndarray,
        context: RiskContext | None = None,
    ) -> np.ndarray:
        if context is None:
            raise ValueError("RiskStrategy requires a RiskContext")
        scorer = LearnRiskScorer(training_config=self.training_config)
        scorer.fit(context)
        machine_labels = (np.asarray(pool_probabilities, dtype=float) >= 0.5).astype(int)
        return scorer.score(pool_features, pool_probabilities, machine_labels)


def available_strategies() -> dict[str, type[SelectionStrategy]]:
    """Registry of the strategies compared in Figure 14."""
    return {
        LeastConfidenceStrategy.name: LeastConfidenceStrategy,
        EntropyStrategy.name: EntropyStrategy,
        RiskStrategy.name: RiskStrategy,
    }
