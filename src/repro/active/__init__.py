"""Active learning for ER with risk-based instance selection (Section 8)."""

from .loop import (
    ActiveLearningLoop,
    ActiveLearningResult,
    default_active_classifier,
    run_active_learning_comparison,
)
from .strategies import (
    EntropyStrategy,
    LeastConfidenceStrategy,
    RiskStrategy,
    SelectionStrategy,
    available_strategies,
)

__all__ = [
    "ActiveLearningLoop",
    "ActiveLearningResult",
    "EntropyStrategy",
    "LeastConfidenceStrategy",
    "RiskStrategy",
    "SelectionStrategy",
    "available_strategies",
    "default_active_classifier",
    "run_active_learning_comparison",
]
