"""``repro.online`` — incremental resolution with an audited merge log.

The batch stack answers "how risky is this frozen pair set?"; this package
answers the operational question: records arrive continuously, so *decide* as
they arrive and make every decision inspectable and reversible.

* :mod:`repro.online.cluster` — :class:`ClusterStore`, a deterministic
  union-find entity state with cannot-link constraints;
* :mod:`repro.online.events` — :class:`ResolutionEvent` /
  :class:`EventLog`, the append-only JSONL audit log, and
  :func:`replay_events`, which rebuilds cluster state bit-identically
  (honouring reverts);
* :mod:`repro.online.resolver` — :class:`OnlineResolver`, wiring a live
  blocking index and the kernel-warm :class:`~repro.serve.service.RiskService`
  to threshold-driven merge/split/escalate decisions
  (:class:`ResolutionPolicy`, registered in :data:`POLICIES`).

Entry points: ``python -m repro.serve resolve`` streams a corpus through a
resolver from the command line; the HTTP tier exposes ``POST /resolve``,
``GET /clusters/{id}`` and ``GET /events`` when built with an online policy;
a :class:`~repro.compose.spec.PipelineSpec` carries the policy as its
``online`` component.
"""

from .cluster import ClusterStore, record_key
from .events import (
    DECISIONS,
    EVENT_SCHEMA_VERSION,
    EventLog,
    ResolutionEvent,
    STATE_DECISIONS,
    replay_events,
)
from .resolver import (
    OnlineResolver,
    POLICIES,
    ResolutionPolicy,
    ResolutionSummary,
    create_policy,
    register_policy,
    registered_policies,
)

__all__ = [
    "ClusterStore",
    "DECISIONS",
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "OnlineResolver",
    "POLICIES",
    "ResolutionEvent",
    "ResolutionPolicy",
    "ResolutionSummary",
    "STATE_DECISIONS",
    "create_policy",
    "record_key",
    "register_policy",
    "registered_policies",
    "replay_events",
]
