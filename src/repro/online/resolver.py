"""`OnlineResolver`: incremental, audited entity resolution.

Records arrive one at a time (or in corpus waves); each arrival is

1. **blocked** against a live :class:`~repro.blocking.index.InvertedIndex`
   over everything seen so far (the incremental ``add()``/``max_postings``
   path — the index grows with the stream and prunes hot tokens, so probing
   stays bounded on open-ended streams);
2. **risk-scored** against its candidates through a kernel-warm
   :class:`~repro.serve.service.RiskService` — the same batched, cached,
   batch-invariant scoring path the batch pipeline and the HTTP tier use, so
   online scores are bit-identical to batch-scoring the same pairs;
3. **decided** by the :class:`ResolutionPolicy` thresholds: a low-risk
   machine *match* auto-merges the two clusters, a low-risk machine
   *unmatch* auto-splits them (a cannot-link constraint), and everything
   else — high risk either way, or a merge blocked by a constraint — is
   escalated to the human review queue.  This is the paper's operational
   payoff: risk analysis deciding *which* machine decisions to trust, with
   the gradual-ML easy-instances-first regime falling out of the thresholds.

Every decision appends a :class:`~repro.online.events.ResolutionEvent` to the
append-only log with its full audit trail; :meth:`OnlineResolver.revert`
appends a revert event and deterministically rebuilds the cluster store by
replaying the log without the reverted decision.

Policies are registered in :data:`POLICIES` (kind ``"threshold"`` is the
built-in), so a :class:`~repro.compose.spec.PipelineSpec` can carry an
``online`` component spec and the serve CLI / HTTP tier can build a resolver
from JSON configuration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..blocking.corpus import CorpusStream, CorpusWave
from ..blocking.index import InvertedIndex, record_token_set
from ..data.records import Record, RecordPair
from ..exceptions import ConfigurationError, DataError
from ..obs import get_recorder
from ..registry import ComponentRegistry
from .cluster import ClusterStore, record_key
from .events import EventLog, ResolutionEvent, STATE_DECISIONS, replay_events

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime serve import)
    from ..serve.service import RiskService, ScoredPair


@dataclass(frozen=True)
class ResolutionPolicy:
    """The online resolver's knobs: blocking signal + decision thresholds.

    Attributes
    ----------
    attributes:
        Record attributes the live blocking index tokenises.
    merge_threshold:
        A machine *match* with ``risk_score <= merge_threshold`` auto-merges;
        above it, the pair is escalated.
    split_threshold:
        A machine *unmatch* with ``risk_score <= split_threshold`` auto-splits
        (cannot-link); above it, the pair is escalated.
    min_shared, stop_tokens, max_postings:
        Passed to the live :class:`~repro.blocking.index.InvertedIndex`;
        ``max_postings`` is the open-ended-stream pruning cap.
    top_rules:
        Fired rules kept per event explanation (``None`` keeps all).
    explain:
        Attach fired-rule explanations to events.  Disabling skips the
        explain pass entirely (the bench's throughput mode).
    """

    attributes: tuple[str, ...]
    merge_threshold: float = 0.2
    split_threshold: float = 0.2
    min_shared: int = 1
    stop_tokens: tuple[str, ...] = ()
    max_postings: int | None = None
    top_rules: int | None = 3
    explain: bool = True

    def __post_init__(self) -> None:
        attributes = tuple(self.attributes)
        if not attributes or not all(isinstance(a, str) and a for a in attributes):
            raise ConfigurationError(
                "resolution policy needs a non-empty tuple of attribute names"
            )
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "stop_tokens", tuple(self.stop_tokens))
        for name in ("merge_threshold", "split_threshold"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
            object.__setattr__(self, name, value)
        if self.min_shared < 1:
            raise ConfigurationError("min_shared must be >= 1")
        if self.max_postings is not None and self.max_postings < 1:
            raise ConfigurationError("max_postings must be >= 1 or None")
        if self.top_rules is not None and self.top_rules < 1:
            raise ConfigurationError("top_rules must be >= 1 or None")

    def to_dict(self) -> dict[str, Any]:
        return {
            "attributes": list(self.attributes),
            "merge_threshold": self.merge_threshold,
            "split_threshold": self.split_threshold,
            "min_shared": self.min_shared,
            "stop_tokens": list(self.stop_tokens),
            "max_postings": self.max_postings,
            "top_rules": self.top_rules,
            "explain": self.explain,
        }

    @classmethod
    def from_dict(cls, values: Mapping[str, Any]) -> "ResolutionPolicy":
        if not isinstance(values, Mapping):
            raise ConfigurationError(
                f"resolution policy must be a mapping, got {type(values).__name__}"
            )
        return cls(**dict(values))

    def build_index(self) -> InvertedIndex:
        """A fresh live blocking index configured by this policy."""
        return InvertedIndex(
            min_shared=self.min_shared,
            stop_tokens=self.stop_tokens,
            max_postings=self.max_postings,
        )


#: Policy registry: lets a ``PipelineSpec``'s ``online`` component and the
#: serve layers name their decision policy from JSON configuration.
POLICIES = ComponentRegistry("resolution policy")
POLICIES.register("threshold", ResolutionPolicy)


def register_policy(key: str, factory=None, *, overwrite: bool = False):
    """Register a resolution-policy factory under ``key`` (decorator-friendly)."""
    return POLICIES.register(key, factory, overwrite=overwrite)


def registered_policies() -> list[str]:
    """Registered policy kinds, sorted."""
    return POLICIES.keys()


def create_policy(kind: str, params: Mapping[str, Any] | None = None) -> ResolutionPolicy:
    """Build a policy from its registry kind + params."""
    policy = POLICIES.create(kind, **dict(params or {}))
    if not isinstance(policy, ResolutionPolicy):
        raise ConfigurationError(
            f"resolution policy {kind!r} built a {type(policy).__name__}, "
            "expected a ResolutionPolicy"
        )
    return policy


@dataclass
class ResolutionSummary:
    """Counts of one resolution pass (what the CLI and bench print)."""

    records: int = 0
    pairs_scored: int = 0
    merges: int = 0
    splits: int = 0
    escalations: int = 0

    def observe(self, events: Iterable[ResolutionEvent]) -> None:
        for event in events:
            self.pairs_scored += 1
            if event.decision == "merge":
                self.merges += 1
            elif event.decision == "split":
                self.splits += 1
            elif event.decision == "escalate":
                self.escalations += 1

    def to_dict(self) -> dict[str, int]:
        return {
            "records": self.records,
            "pairs_scored": self.pairs_scored,
            "merges": self.merges,
            "splits": self.splits,
            "escalations": self.escalations,
        }


class OnlineResolver:
    """Incrementally resolve a record stream with an audited merge log.

    Parameters
    ----------
    service:
        A kernel-warm :class:`~repro.serve.service.RiskService` around the
        fitted pipeline; all scoring goes through it (cached, batched,
        bit-identical to the batch path).
    policy:
        The :class:`ResolutionPolicy` (blocking attributes + thresholds).
    event_log:
        The append-only log decisions go to; defaults to an in-memory log.
        A log loaded from an existing JSONL file resumes its cluster state
        by replay before any new record is accepted.
    recorder:
        Obs recorder the ``online.*`` counters/gauges/spans go to; defaults
        to the ambient :func:`~repro.obs.get_recorder` at each call (the CLI
        path), but the HTTP tier pins its metrics registry here so ``GET
        /stats`` sees the resolver's telemetry regardless of the global
        recorder.

    All public methods are thread-safe; one lock serialises resolution so
    cluster state, index and log always agree, while log *reads*
    (:meth:`events`) only take the log's own lock and never block a
    long-running resolve.
    """

    def __init__(
        self,
        service: "RiskService",
        policy: ResolutionPolicy,
        *,
        event_log: EventLog | None = None,
        recorder=None,
    ) -> None:
        self.service = service
        self.policy = policy
        self.log = event_log if event_log is not None else EventLog()
        self._pinned_recorder = recorder
        self._lock = threading.RLock()
        self._index = policy.build_index()
        self._records: dict[str, Record] = {}
        self._escalated: list[str] = []  # event ids awaiting human review
        # A resolver constructed on a non-empty (persisted) log resumes the
        # clusters the log describes; records/index state is stream-side and
        # rebuilds as the stream is re-fed.
        self.store = replay_events(self.log.events())

    def _recorder(self):
        return self._pinned_recorder if self._pinned_recorder is not None else get_recorder()

    # -------------------------------------------------------------- resolution
    def add_record(self, record: Record) -> list[ResolutionEvent]:
        """Resolve one arriving record; returns the decisions it produced."""
        recorder = self._recorder()
        with self._lock:
            started = time.perf_counter()
            with recorder.span("online_resolve"):
                key = record_key(record)
                if key in self._records:
                    raise DataError(
                        f"record key {key!r} was already resolved; online record "
                        "keys (source:record_id) must be unique per stream"
                    )
                tokens = record_token_set(record, self.policy.attributes)
                candidate_keys = self._index.candidates(tokens)
                self._records[key] = record
                self.store.add(key)
                events: list[ResolutionEvent] = []
                if candidate_keys:
                    pairs = [
                        RecordPair(self._records[candidate], record)
                        for candidate in candidate_keys
                    ]
                    scored = self.service.score_pairs(pairs)
                    if self.policy.explain:
                        explanations = self.service.explain_pairs(
                            pairs, top_rules=self.policy.top_rules
                        )
                    else:
                        explanations = [None] * len(pairs)
                    for candidate, one, explanation in zip(
                        candidate_keys, scored, explanations
                    ):
                        events.append(self._decide(candidate, key, one, explanation))
                # Index *after* probing so a record never pairs with itself.
                self._index.add(key, tokens)
            recorder.apply(
                counters={
                    "online.records": 1,
                    "online.pairs_scored": len(candidate_keys),
                },
                observations={"online.decision_seconds": time.perf_counter() - started},
                gauges={"online.queue_depth": len(self._escalated)},
            )
            return events

    def _decide(
        self,
        left_key: str,
        right_key: str,
        scored: "ScoredPair",
        explanation,
    ) -> ResolutionEvent:
        """Apply the policy to one scored pair and log the decision."""
        policy = self.policy
        store = self.store
        before_left = store.members(left_key)
        before_right = store.members(right_key)
        threshold = (
            policy.merge_threshold if scored.machine_label == 1 else policy.split_threshold
        )
        cluster_after: list[str] | None = None

        if scored.risk_score > threshold:
            decision, reason = "escalate", "risk_above_threshold"
        elif scored.machine_label == 1:
            if store.find(left_key) == store.find(right_key):
                decision, reason = "merge", "already_same_cluster"
            elif store.can_merge(left_key, right_key):
                decision, reason = "merge", "risk_below_merge_threshold"
            else:
                decision, reason = "escalate", "cannot_link_conflict"
        else:
            if store.find(left_key) == store.find(right_key):
                decision, reason = "escalate", "split_within_cluster"
            else:
                decision, reason = "split", "risk_below_split_threshold"

        recorder = self._recorder()
        if decision == "merge":
            store.merge(left_key, right_key)
            cluster_after = store.members(left_key)
            recorder.count("online.merges")
        elif decision == "split":
            store.split(left_key, right_key)
            recorder.count("online.splits")
        else:
            recorder.count("online.escalations")

        left, right = self._records[left_key], self._records[right_key]
        event = self.log.append(
            decision=decision,
            left_id=left.record_id,
            left_source=left.source,
            right_id=right.record_id,
            right_source=right.source,
            reason=reason,
            probability=scored.probability,
            machine_label=scored.machine_label,
            risk_score=scored.risk_score,
            threshold=threshold,
            explanation=explanation.to_dict() if explanation is not None else None,
            cluster_before_left=before_left,
            cluster_before_right=before_right,
            cluster_after=cluster_after,
        )
        if decision == "escalate":
            self._escalated.append(event.event_id)
        return event

    def resolve_wave(self, wave: CorpusWave) -> list[ResolutionEvent]:
        """Feed one corpus wave (left table, then right table) record by record."""
        events: list[ResolutionEvent] = []
        for record in wave.left:
            events.extend(self.add_record(record))
        for record in wave.right:
            events.extend(self.add_record(record))
        return events

    def resolve_corpus(
        self, corpus: CorpusStream, max_waves: int | None = None
    ) -> ResolutionSummary:
        """Stream a whole corpus through the resolver; returns pass counts."""
        summary = ResolutionSummary()
        for number, wave in enumerate(corpus.waves(), start=1):
            events = self.resolve_wave(wave)
            summary.records += wave.n_records
            summary.observe(events)
            if max_waves is not None and number >= max_waves:
                break
        return summary

    # ------------------------------------------------------------------ revert
    def revert(self, event_id: str) -> ResolutionEvent:
        """Revert a merge/split decision; cluster state is rebuilt by replay.

        The revert is itself an appended event (the log stays append-only);
        the new cluster store is ``replay_events(log)`` — deterministic, and
        bit-identical to what any other reader replaying the log computes.
        """
        with self._lock:
            target = self.log.event(event_id)
            if target.decision not in STATE_DECISIONS:
                raise DataError(
                    f"event {event_id!r} is a {target.decision!r} decision; "
                    "only merge/split decisions can be reverted"
                )
            if event_id in self.log.reverted_event_ids():
                raise DataError(f"event {event_id!r} was already reverted")
            event = self.log.append(
                decision="revert",
                left_id=target.left_id,
                left_source=target.left_source,
                right_id=target.right_id,
                right_source=target.right_source,
                reason=f"revert_{target.decision}",
                target_event_id=event_id,
            )
            self.store = replay_events(self.log.events())
            for key in self._records:
                self.store.add(key)
            self._recorder().count("online.reverts")
            return event

    # -------------------------------------------------------------- inspection
    def events(self, since: int = 0) -> list[ResolutionEvent]:
        """The decision log (``since`` = last sequence already seen)."""
        return self.log.events(since=since)

    def cluster_of(self, key: str) -> list[str]:
        """Sorted member keys of the cluster containing record ``key``."""
        with self._lock:
            return self.store.members(key)

    def escalations(self) -> list[ResolutionEvent]:
        """Escalated decisions awaiting review, oldest first."""
        with self._lock:
            pending = list(self._escalated)
        return [self.log.event(event_id) for event_id in pending]

    @property
    def record_count(self) -> int:
        with self._lock:
            return len(self._records)

    def state_dict(self) -> dict:
        """The cluster store's canonical exported state (replay-comparable)."""
        with self._lock:
            return self.store.to_dict()
