"""The append-only resolution-event log: every online decision, audited.

Each :class:`ResolutionEvent` is one pairwise decision — ``merge``, ``split``,
``escalate`` — or a ``revert`` pointing at an earlier event.  An event carries
the full merge audit trail: the pair's identity, the machine probability and
label, the risk score, the threshold that triggered the decision, the
fired-rule explanation (:meth:`~repro.risk.model.PairRiskExplanation.to_dict`)
and the cluster states before/after.  The wire format is one sorted-key
compact JSON object per line (the convention the HTTP tier's golden fixtures
pin), stamped with :data:`EVENT_SCHEMA_VERSION`.

:class:`EventLog` is append-only: events get monotonically increasing
sequence numbers and ids, optionally mirrored to a JSONL file on disk (each
append is written and flushed before it is visible to readers).  Nothing is
ever rewritten — a revert is itself an appended event, and
:func:`replay_events` rebuilds a :class:`ClusterStore` by applying every
non-reverted merge/split in order.  Because cluster naming is deterministic
(see :mod:`repro.online.cluster`), replay reconstructs the live store
bit-identically, which is both the revert mechanism and the crash-recovery
story: a resolver restarted on an existing log resumes from the replayed
state.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from ..exceptions import DataError
from .cluster import ClusterStore

#: Stamped into every event; bump on any layout change.
EVENT_SCHEMA_VERSION = 1

#: The decisions an event may carry.
DECISIONS = ("merge", "split", "escalate", "revert")

#: Decisions that change cluster state (and are therefore revertable).
STATE_DECISIONS = ("merge", "split")


def _event_id(sequence: int) -> str:
    return f"evt-{sequence:06d}"


@dataclass(frozen=True)
class ResolutionEvent:
    """One audited resolution decision (immutable once appended)."""

    sequence: int
    decision: str
    left_id: str
    left_source: str
    right_id: str
    right_source: str
    #: Why this decision fired (e.g. ``"risk_below_merge_threshold"``).
    reason: str
    probability: float | None = None
    machine_label: int | None = None
    risk_score: float | None = None
    #: The policy threshold the risk score was compared against.
    threshold: float | None = None
    #: ``PairRiskExplanation.to_dict()`` payload (``None`` when disabled).
    explanation: dict[str, Any] | None = None
    cluster_before_left: list[str] | None = None
    cluster_before_right: list[str] | None = None
    cluster_after: list[str] | None = None
    #: For ``revert`` events: the id of the decision being reverted.
    target_event_id: str | None = None
    schema_version: int = EVENT_SCHEMA_VERSION

    @property
    def event_id(self) -> str:
        return _event_id(self.sequence)

    @property
    def left_key(self) -> str:
        return f"{self.left_source}:{self.left_id}"

    @property
    def right_key(self) -> str:
        return f"{self.right_source}:{self.right_id}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "sequence": self.sequence,
            "event_id": self.event_id,
            "decision": self.decision,
            "left_id": self.left_id,
            "left_source": self.left_source,
            "right_id": self.right_id,
            "right_source": self.right_source,
            "reason": self.reason,
            "probability": self.probability,
            "machine_label": self.machine_label,
            "risk_score": self.risk_score,
            "threshold": self.threshold,
            "explanation": self.explanation,
            "cluster_before_left": self.cluster_before_left,
            "cluster_before_right": self.cluster_before_right,
            "cluster_after": self.cluster_after,
            "target_event_id": self.target_event_id,
        }

    def to_json_line(self) -> str:
        """The event's one byte representation: sorted keys, compact, + LF."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"

    @classmethod
    def from_dict(cls, values: Mapping[str, Any]) -> "ResolutionEvent":
        if not isinstance(values, Mapping):
            raise DataError(f"resolution event must be a mapping, got {type(values).__name__}")
        try:
            event = cls(
                sequence=int(values["sequence"]),
                decision=str(values["decision"]),
                left_id=str(values["left_id"]),
                left_source=str(values["left_source"]),
                right_id=str(values["right_id"]),
                right_source=str(values["right_source"]),
                reason=str(values["reason"]),
                probability=values.get("probability"),
                machine_label=values.get("machine_label"),
                risk_score=values.get("risk_score"),
                threshold=values.get("threshold"),
                explanation=values.get("explanation"),
                cluster_before_left=values.get("cluster_before_left"),
                cluster_before_right=values.get("cluster_before_right"),
                cluster_after=values.get("cluster_after"),
                target_event_id=values.get("target_event_id"),
                schema_version=int(values.get("schema_version", EVENT_SCHEMA_VERSION)),
            )
        except KeyError as exc:
            raise DataError(f"resolution event is missing field {exc.args[0]!r}") from exc
        if event.decision not in DECISIONS:
            raise DataError(f"unknown resolution decision {event.decision!r}")
        return event


class EventLog:
    """Append-only, thread-safe log of resolution events.

    Parameters
    ----------
    path:
        Optional JSONL file the log mirrors to.  When the file already
        exists its events are loaded first, so a resolver constructed on an
        old log continues its sequence (the restart/recovery path).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._lock = threading.Lock()
        self._events: list[ResolutionEvent] = []
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            for number, line in enumerate(self.path.read_text().splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    values = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DataError(
                        f"event log {self.path} line {number} is not valid JSON: {exc}"
                    ) from exc
                self._events.append(ResolutionEvent.from_dict(values))
            for index, event in enumerate(self._events, start=1):
                if event.sequence != index:
                    raise DataError(
                        f"event log {self.path} is not contiguous: "
                        f"expected sequence {index}, found {event.sequence}"
                    )

    def append(self, **fields: Any) -> ResolutionEvent:
        """Append one event (sequence assigned here); returns it."""
        with self._lock:
            event = ResolutionEvent(sequence=len(self._events) + 1, **fields)
            if event.decision not in DECISIONS:
                raise DataError(f"unknown resolution decision {event.decision!r}")
            if self.path is not None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(event.to_json_line())
                    handle.flush()
            self._events.append(event)
            return event

    def events(self, since: int = 0) -> list[ResolutionEvent]:
        """Events with ``sequence > since`` (a consistent snapshot)."""
        if since < 0:
            raise DataError(f"'since' must be >= 0, got {since}")
        with self._lock:
            if since >= len(self._events):
                return []
            return list(self._events[since:])

    def event(self, event_id: str) -> ResolutionEvent:
        """Look one event up by id."""
        with self._lock:
            for event in self._events:
                if event.event_id == event_id:
                    return event
        raise DataError(f"unknown event id {event_id!r}")

    def reverted_event_ids(self) -> set[str]:
        """Ids of events targeted by a ``revert`` event."""
        with self._lock:
            return {
                event.target_event_id
                for event in self._events
                if event.decision == "revert" and event.target_event_id is not None
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[ResolutionEvent]:
        return iter(self.events())


def replay_events(events: Iterable[ResolutionEvent]) -> ClusterStore:
    """Rebuild a :class:`ClusterStore` from a log, honouring reverts.

    Merge/split decisions are applied in sequence order; decisions targeted
    by a ``revert`` event are skipped entirely, and escalations/reverts
    themselves never touch cluster state.  Because the store's cluster naming
    and constraint bookkeeping are order-deterministic, the result is
    bit-identical (via :meth:`ClusterStore.to_dict`) to the live store that
    produced the log.
    """
    events = list(events)
    reverted = {
        event.target_event_id
        for event in events
        if event.decision == "revert" and event.target_event_id is not None
    }
    store = ClusterStore()
    for event in events:
        if event.decision not in STATE_DECISIONS or event.event_id in reverted:
            continue
        left_key, right_key = event.left_key, event.right_key
        store.add(left_key)
        store.add(right_key)
        if event.decision == "merge":
            store.merge(left_key, right_key)
        else:
            store.split(left_key, right_key)
    return store
