"""`ClusterStore`: the resolver's deterministic union-find entity state.

Online resolution folds pairwise decisions into entity clusters: a *merge*
unions the two records' clusters, a *split* records a cannot-link constraint
between them, and everything else leaves the state untouched.  The store is a
union-find over record keys (``"<source>:<record_id>"``, see
:func:`record_key`) with two properties the event log depends on:

* **Determinism** — the representative of a cluster is always its
  lexicographically smallest member key, independent of merge order or path
  compression, so two stores that saw the same *set* of merges export the
  same :meth:`to_dict` bytes.  This is what lets the test suite assert that
  replaying the event log reconstructs the live store bit-identically.
* **Constraint transparency** — cannot-links are stored as the original
  record-key pairs (exactly what the split events carry), with a root-level
  index maintained for O(1) :meth:`can_merge` checks.  Replaying a log
  therefore rebuilds constraints from the events alone, with no hidden
  root-naming state.

Singleton clusters are implicit: every record the resolver has seen is a
cluster of one until a merge says otherwise, and :meth:`to_dict` exports only
multi-member clusters plus the constraint pairs — so the exported state is a
pure function of the (non-reverted) merge/split decisions.
"""

from __future__ import annotations

from ..data.records import Record
from ..exceptions import DataError


def record_key(record: Record) -> str:
    """The store identity of a record: ``"<source>:<record_id>"``.

    Qualifying by source keeps left/right tables with overlapping id spaces
    (``"0"`` on both sides of a generated wave) from colliding in one store.
    """
    return f"{record.source}:{record.record_id}"


class ClusterStore:
    """Union-find over record keys with cannot-link constraints."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        #: Canonical (min, max) record-key pairs carrying a cannot-link.
        self._cannot_pairs: set[tuple[str, str]] = set()
        #: Root-level index of the pairs above, updated on every union.
        self._root_cannot: dict[str, set[str]] = {}

    # ------------------------------------------------------------- membership
    def add(self, key: str) -> None:
        """Ensure ``key`` exists (as a singleton unless already clustered)."""
        self._parent.setdefault(key, key)

    def __contains__(self, key: str) -> bool:
        return key in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, key: str) -> str:
        """The cluster representative (smallest member key) of ``key``."""
        if key not in self._parent:
            raise DataError(f"unknown record key {key!r} in cluster store")
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    # -------------------------------------------------------------- decisions
    def can_merge(self, a: str, b: str) -> bool:
        """Whether no cannot-link constraint separates the two clusters."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return True
        return root_b not in self._root_cannot.get(root_a, ())

    def merge(self, a: str, b: str) -> str:
        """Union the clusters of ``a`` and ``b``; returns the new root.

        The smaller root key wins, so cluster naming never depends on the
        order the merge arguments (or earlier merges) arrived in.  Merging
        across a cannot-link is refused — callers are expected to check
        :meth:`can_merge` and escalate instead.
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if root_b in self._root_cannot.get(root_a, ()):
            raise DataError(
                f"cannot merge {a!r} and {b!r}: a cannot-link constraint "
                f"separates their clusters ({root_a!r} / {root_b!r})"
            )
        winner, loser = sorted((root_a, root_b))
        self._parent[loser] = winner
        # Re-root the loser's constraints onto the winner.
        moved = self._root_cannot.pop(loser, set())
        if moved:
            merged = self._root_cannot.setdefault(winner, set())
            merged.update(moved)
            for other in moved:
                peers = self._root_cannot[other]
                peers.discard(loser)
                peers.add(winner)
        return winner

    def split(self, a: str, b: str) -> None:
        """Record a cannot-link between ``a`` and ``b`` (and their clusters)."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            raise DataError(
                f"cannot split {a!r} and {b!r}: they are already in one "
                f"cluster ({root_a!r})"
            )
        self._cannot_pairs.add((min(a, b), max(a, b)))
        self._root_cannot.setdefault(root_a, set()).add(root_b)
        self._root_cannot.setdefault(root_b, set()).add(root_a)

    # ------------------------------------------------------------- inspection
    def members(self, key: str) -> list[str]:
        """Sorted member keys of the cluster containing ``key``."""
        root = self.find(key)
        return sorted(k for k in self._parent if self.find(k) == root)

    def clusters(self) -> dict[str, list[str]]:
        """Every multi-member cluster as ``{root: sorted members}``."""
        grouped: dict[str, list[str]] = {}
        for key in self._parent:
            grouped.setdefault(self.find(key), []).append(key)
        return {
            root: sorted(members)
            for root, members in grouped.items()
            if len(members) > 1
        }

    def cannot_links(self) -> list[list[str]]:
        """The recorded cannot-link record-key pairs, sorted."""
        return [list(pair) for pair in sorted(self._cannot_pairs)]

    def to_dict(self) -> dict:
        """Canonical JSON-safe state: multi-member clusters + constraints.

        Singletons are excluded on purpose: the export is then a pure
        function of the applied merge/split decisions, which is what makes
        ``replay(log).to_dict() == live.to_dict()`` a meaningful (and
        bit-exact) invariant even though the live store also tracks records
        that never appeared in any decision.
        """
        return {
            "clusters": {
                root: members for root, members in sorted(self.clusters().items())
            },
            "cannot_links": self.cannot_links(),
        }
