"""The LearnRisk risk model (Section 6).

:class:`LearnRiskModel` is the paper's primary contribution: an interpretable
and learnable model that ranks classifier-labeled pairs by their risk of being
mislabeled.  Its risk features are the one-sided rules produced by
:class:`~repro.risk.feature_generation.RiskFeatureGenerator` plus the
classifier-output feature; each feature carries an equivalence-probability
distribution; a pair's distribution is the weighted portfolio aggregate of its
features' distributions; and the pair's risk is the Value-at-Risk of its
mislabeling loss.  The feature weights, feature variances (via relative
standard deviations) and the classifier-output influence function are learned
on validation data with a pairwise learning-to-rank loss.

Typical usage (array level; see :mod:`repro.pipeline` for the workload level)::

    features = RiskFeatureGenerator().generate(train_workload)
    model = LearnRiskModel(features)
    model.fit(validation_metrics, validation_probabilities,
              validation_machine_labels, validation_ground_truth)
    risk = model.score(test_metrics, test_probabilities, test_machine_labels)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..data.records import MATCH
from ..exceptions import ConfigurationError, NotFittedError, PersistenceError
from ..features.vectorizer import PairVectorizer
from ..obs import get_recorder
from ..serialization import (
    component_state,
    dataclass_from_dict,
    require_state,
    state_field,
)
from .distributions import truncated_normal_quantile
from .feature_generation import GeneratedRiskFeatures
from .metrics import resolve_risk_metric
from ..numerics import batch_invariant_matvec
from .portfolio import PortfolioDistribution, aggregate_portfolio, feature_contributions
from .training import (
    RiskModelTrainer,
    RiskParameters,
    TrainingConfig,
    TrainingResult,
    output_bin_matrix,
)


@dataclass(frozen=True)
class FeatureExplanation:
    """One entry of a pair's risk explanation (the interpretability output)."""

    description: str
    weight_share: float
    expectation: float
    is_classifier_output: bool


@dataclass(frozen=True)
class RuleContribution:
    """One risk feature's contribution to a pair's aggregated distribution.

    ``rule_index`` is the feature's position in the model's rule list, or
    ``-1`` for the classifier-output feature; ``weight_share`` is its share of
    the pair's total portfolio weight (shares of one pair sum to 1).
    """

    rule_index: int
    description: str
    weight_share: float
    expectation: float

    @property
    def is_classifier_output(self) -> bool:
        return self.rule_index == -1

    def to_dict(self) -> dict:
        return {
            "rule_index": self.rule_index,
            "description": self.description,
            "weight_share": self.weight_share,
            "expectation": self.expectation,
            "is_classifier_output": self.is_classifier_output,
        }


@dataclass(frozen=True)
class PairRiskExplanation:
    """Decision-level telemetry for one scored pair.

    The full interpretability payload the paper motivates: which rules fired
    on the pair (with their portfolio weight shares), the aggregated
    equivalence-probability distribution behind the score, and the central
    ``2θ−1`` probability interval ``[interval_low, interval_high]`` of that
    (truncated-normal) distribution at the model's VaR confidence θ.
    """

    machine_probability: float
    machine_label: int
    risk_score: float
    equivalence_mean: float
    equivalence_std: float
    interval_low: float
    interval_high: float
    fired_rules: list[RuleContribution]

    def to_dict(self) -> dict:
        return {
            "machine_probability": self.machine_probability,
            "machine_label": self.machine_label,
            "risk_score": self.risk_score,
            "equivalence_mean": self.equivalence_mean,
            "equivalence_std": self.equivalence_std,
            "interval_low": self.interval_low,
            "interval_high": self.interval_high,
            "fired_rules": [rule.to_dict() for rule in self.fired_rules],
        }


class LearnRiskModel:
    """Interpretable and learnable risk model for ER (the paper's LearnRisk).

    Parameters
    ----------
    features:
        Generated risk features (rules + fitted vectoriser).
    config:
        Training hyper-parameters; the VaR confidence ``theta`` also drives
        scoring.
    n_output_bins:
        Number of classifier-output bins, each with its own learnable RSD.
    risk_metric:
        Name of a registered risk metric: ``"var"`` (paper default), ``"cvar"``
        or ``"expectation"`` out of the box; custom metrics plug in through
        :func:`repro.risk.metrics.register_risk_metric`.
    initial_weight, initial_rsd, initial_alpha, initial_beta:
        Effective initial values of the trainable parameters.
    """

    def __init__(
        self,
        features: GeneratedRiskFeatures,
        config: TrainingConfig | None = None,
        n_output_bins: int = 10,
        risk_metric: str = "var",
        initial_weight: float = 1.0,
        initial_rsd: float = 0.2,
        initial_alpha: float = 0.2,
        initial_beta: float = 1.0,
    ) -> None:
        # Resolve eagerly so a typo fails at construction, not deep in scoring.
        self._risk_metric_function = resolve_risk_metric(risk_metric)
        if n_output_bins < 1:
            raise ConfigurationError("n_output_bins must be >= 1")
        self.features = features
        self.config = config or TrainingConfig()
        self.n_output_bins = n_output_bins
        self.risk_metric = risk_metric
        self.parameters = RiskParameters.initialise(
            n_rules=len(features.rules),
            n_output_bins=n_output_bins,
            initial_weight=initial_weight,
            initial_rsd=initial_rsd,
            initial_alpha=initial_alpha,
            initial_beta=initial_beta,
        )
        self.training_result: TrainingResult | None = None
        self._fitted = False

    # ----------------------------------------------------------- parameters
    @property
    def rule_weights(self) -> np.ndarray:
        """Effective (post-softplus) rule weights."""
        return np.log1p(np.exp(self.parameters.rule_weight_raw.data))

    @property
    def rule_rsds(self) -> np.ndarray:
        """Effective (post-softplus) rule relative standard deviations."""
        return np.log1p(np.exp(self.parameters.rule_rsd_raw.data))

    @property
    def rule_expectations(self) -> np.ndarray:
        """Prior expectations of the rule features (fixed, not trained)."""
        return np.array([rule.expectation for rule in self.features.rules], dtype=float)

    @property
    def influence_alpha(self) -> float:
        """Effective α of the classifier-output influence function (Eq. 11)."""
        return float(np.log1p(np.exp(self.parameters.alpha_raw.data[0])))

    @property
    def influence_beta(self) -> float:
        """Effective β of the classifier-output influence function (Eq. 11)."""
        return float(np.log1p(np.exp(self.parameters.beta_raw.data[0])))

    @property
    def output_rsds(self) -> np.ndarray:
        """Effective per-bin RSD of the classifier-output feature."""
        return np.log1p(np.exp(self.parameters.output_rsd_raw.data))

    def influence_weight(self, probabilities: np.ndarray) -> np.ndarray:
        """The influence-function weight of the classifier output (Eq. 11)."""
        probabilities = np.asarray(probabilities, dtype=float)
        alpha = self.influence_alpha
        beta = self.influence_beta
        return -np.exp(-((probabilities - 0.5) ** 2) / (2.0 * alpha ** 2)) + beta + 1.0

    # ------------------------------------------------------------------- fit
    def fit(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
        ground_truth: np.ndarray,
    ) -> "LearnRiskModel":
        """Train the risk model on risk-training (validation) data.

        Parameters
        ----------
        metric_matrix:
            Basic-metric matrix of the risk-training pairs (from the same
            vectoriser the features were generated with).
        machine_probabilities, machine_labels:
            The classifier's probability outputs and hard labels on those pairs.
        ground_truth:
            True labels of those pairs; the risk label of a pair is
            ``machine_label != ground_truth``.
        """
        metric_matrix = np.asarray(metric_matrix, dtype=float)
        machine_probabilities = np.asarray(machine_probabilities, dtype=float)
        machine_labels = np.asarray(machine_labels, dtype=int)
        ground_truth = np.asarray(ground_truth, dtype=int)
        if not (len(metric_matrix) == len(machine_probabilities) == len(machine_labels) == len(ground_truth)):
            raise ConfigurationError("all fit inputs must have one entry per pair")

        # Membership comes from the features' compiled RuleKernel (built once,
        # reused by every later score/distribution call on this model).
        membership = self.features.membership(metric_matrix)
        risk_labels = (machine_labels != ground_truth).astype(int)
        trainer = RiskModelTrainer(self.config)
        self.training_result = trainer.train(
            self.parameters,
            membership,
            self.rule_expectations,
            machine_probabilities,
            machine_labels,
            risk_labels,
        )
        self._fitted = True
        return self

    # ----------------------------------------------------------- distribution
    def distribution(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
    ) -> PortfolioDistribution:
        """Aggregate the equivalence-probability distribution of each pair."""
        metric_matrix = np.asarray(metric_matrix, dtype=float)
        machine_probabilities = np.asarray(machine_probabilities, dtype=float)
        with get_recorder().span("rule_kernel"):
            membership = self.features.membership(metric_matrix)
        return self._distribution_from_membership(membership, machine_probabilities)

    def _distribution_from_membership(
        self,
        membership: np.ndarray,
        machine_probabilities: np.ndarray,
    ) -> PortfolioDistribution:
        """Portfolio aggregation over a precomputed membership matrix.

        Split out of :meth:`distribution` so :meth:`explain_pairs` can reuse
        the membership it needs anyway without computing rule coverage twice.
        """
        with get_recorder().span("aggregate"):
            rule_means = self.rule_expectations
            rule_stds = self.rule_rsds * rule_means if len(rule_means) else np.array([])
            output_bins = output_bin_matrix(machine_probabilities, self.n_output_bins)
            # Batch-invariant matvec (repro.numerics): streamed chunked scoring
            # must be bit-identical to the eager path at any chunk size.
            output_rsd = batch_invariant_matvec(output_bins, self.output_rsds)
            return aggregate_portfolio(
                membership,
                self.rule_weights,
                rule_means,
                rule_stds,
                output_weights=self.influence_weight(machine_probabilities),
                output_means=machine_probabilities,
                output_stds=output_rsd * machine_probabilities,
            )

    # ----------------------------------------------------------------- score
    def score(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        """Risk score of each pair (higher = more likely mislabeled).

        The model may be used unfitted (all parameters at their initial
        values), which corresponds to the untrained prior risk model; ``fit``
        is required for the learned behaviour evaluated in the paper.
        """
        machine_labels = np.asarray(machine_labels, dtype=int)
        with get_recorder().span("risk_score"):
            distribution = self.distribution(metric_matrix, machine_probabilities)
            return np.asarray(
                self._risk_metric_function(distribution, machine_labels, theta=self.config.theta),
                dtype=float,
            )

    def rank(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
    ) -> np.ndarray:
        """Indices of pairs ordered from highest to lowest risk."""
        scores = self.score(metric_matrix, machine_probabilities, machine_labels)
        return np.argsort(-scores, kind="stable")

    # ------------------------------------------------------------ interpret
    def explain(
        self,
        metric_row: np.ndarray,
        machine_probability: float,
        top_k: int | None = None,
    ) -> list[FeatureExplanation]:
        """Explain one pair's risk by its features' weight shares.

        Returns the rules covering the pair (plus the classifier-output
        feature) ordered by their share of the portfolio weight — the paper's
        interpretability payoff: a risky pair can be traced back to the
        human-readable rules responsible.
        """
        metric_row = np.asarray(metric_row, dtype=float).reshape(1, -1)
        membership_row = self.features.rule_matrix(metric_row)[0]
        output_weight = float(self.influence_weight(np.array([machine_probability]))[0])
        contributions = feature_contributions(
            membership_row, self.rule_weights, self.rule_expectations,
            output_weight=output_weight, output_mean=machine_probability,
        )
        explanations = []
        for feature_index, share in contributions:
            if feature_index == -1:
                explanations.append(FeatureExplanation(
                    description=f"classifier output = {machine_probability:.3f}",
                    weight_share=share,
                    expectation=float(machine_probability),
                    is_classifier_output=True,
                ))
            else:
                rule = self.features.rules[feature_index]
                explanations.append(FeatureExplanation(
                    description=rule.describe(),
                    weight_share=share,
                    expectation=rule.expectation,
                    is_classifier_output=False,
                ))
        if top_k is not None:
            explanations = explanations[:top_k]
        return explanations

    def _rule_contributions(
        self, membership_row: np.ndarray, machine_probability: float
    ) -> list[RuleContribution]:
        """The fired features of one pair as :class:`RuleContribution` entries."""
        output_weight = float(self.influence_weight(np.array([machine_probability]))[0])
        contributions = feature_contributions(
            membership_row, self.rule_weights, self.rule_expectations,
            output_weight=output_weight, output_mean=machine_probability,
        )
        fired: list[RuleContribution] = []
        for feature_index, share in contributions:
            if feature_index == -1:
                fired.append(RuleContribution(
                    rule_index=-1,
                    description=f"classifier output = {machine_probability:.3f}",
                    weight_share=share,
                    expectation=float(machine_probability),
                ))
            else:
                rule = self.features.rules[feature_index]
                fired.append(RuleContribution(
                    rule_index=int(feature_index),
                    description=rule.describe(),
                    weight_share=share,
                    expectation=rule.expectation,
                ))
        return fired

    def explain_pairs(
        self,
        metric_matrix: np.ndarray,
        machine_probabilities: np.ndarray,
        machine_labels: np.ndarray,
        top_rules: int | None = None,
    ) -> list[PairRiskExplanation]:
        """Full decision-level explanations, one per pair.

        For every pair: the rules that fired on it (with portfolio weight
        shares), its aggregated equivalence-probability distribution, the
        central probability interval at the model's VaR confidence θ
        (``[F⁻¹(1−θ), F⁻¹(θ)]`` of the truncated normal), and its risk score —
        the batched, serialisable counterpart of :meth:`explain`.
        ``top_rules`` truncates each pair's rule list (highest weight share
        first, matching :meth:`explain`'s ordering).
        """
        metric_matrix = np.asarray(metric_matrix, dtype=float)
        machine_probabilities = np.asarray(machine_probabilities, dtype=float)
        machine_labels = np.asarray(machine_labels, dtype=int)
        with get_recorder().span("explain_pairs"):
            membership = self.features.membership(metric_matrix)
            distribution = self._distribution_from_membership(
                membership, machine_probabilities
            )
            risk_scores = np.asarray(
                self._risk_metric_function(
                    distribution, machine_labels, theta=self.config.theta
                ),
                dtype=float,
            )
            theta = self.config.theta
            stds = distribution.stds
            interval_lows = truncated_normal_quantile(
                distribution.means, stds, 1.0 - theta
            )
            interval_highs = truncated_normal_quantile(distribution.means, stds, theta)
            explanations: list[PairRiskExplanation] = []
            for row in range(len(metric_matrix)):
                fired = self._rule_contributions(
                    membership[row], float(machine_probabilities[row])
                )
                if top_rules is not None:
                    fired = fired[:top_rules]
                explanations.append(PairRiskExplanation(
                    machine_probability=float(machine_probabilities[row]),
                    machine_label=int(machine_labels[row]),
                    risk_score=float(risk_scores[row]),
                    equivalence_mean=float(distribution.means[row]),
                    equivalence_std=float(stds[row]),
                    interval_low=float(interval_lows[row]),
                    interval_high=float(interval_highs[row]),
                    fired_rules=fired,
                ))
            return explanations

    # ------------------------------------------------------------ persistence
    STATE_KIND = "learn_risk_model"
    STATE_VERSION = 1

    def to_state(self, include_vectorizer: bool = True) -> dict:
        """Export the risk model (features, config and learned parameters).

        ``include_vectorizer`` is forwarded to
        :meth:`GeneratedRiskFeatures.to_state`; pass ``False`` when the
        enclosing state already stores the shared vectoriser.
        """
        return component_state(self.STATE_KIND, self.STATE_VERSION, {
            "features": self.features.to_state(include_vectorizer=include_vectorizer),
            "config": asdict(self.config),
            "n_output_bins": self.n_output_bins,
            "risk_metric": self.risk_metric,
            "parameters": self.parameters.to_state(),
            "fitted": self._fitted,
            "training_result": (
                None if self.training_result is None else self.training_result.to_dict()
            ),
        })

    @classmethod
    def from_state(
        cls, state: dict, vectorizer: PairVectorizer | None = None
    ) -> "LearnRiskModel":
        """Rebuild a model written by :meth:`to_state`.

        ``vectorizer`` is forwarded to
        :meth:`GeneratedRiskFeatures.from_state` so a caller can share one
        loaded vectoriser across components.
        """
        state = require_state(state, cls.STATE_KIND, cls.STATE_VERSION)
        features = GeneratedRiskFeatures.from_state(
            state_field(state, "features", cls.STATE_KIND), vectorizer=vectorizer
        )
        config = dataclass_from_dict(TrainingConfig, state_field(state, "config", cls.STATE_KIND))
        model = cls(
            features,
            config=config,
            n_output_bins=int(state.get("n_output_bins", 10)),
            risk_metric=str(state.get("risk_metric", "var")),
        )
        model.parameters = RiskParameters.from_state(
            state_field(state, "parameters", cls.STATE_KIND)
        )
        if model.parameters.rule_weight_raw.size != len(features.rules):
            raise PersistenceError(
                f"saved risk parameters cover {model.parameters.rule_weight_raw.size} rules "
                f"but the saved features define {len(features.rules)}"
            )
        training_result = state.get("training_result")
        if training_result is not None:
            model.training_result = TrainingResult.from_dict(training_result)
        model._fitted = bool(state.get("fitted", False))
        return model

    # -------------------------------------------------------------- summary
    def summary(self) -> dict[str, float]:
        """Key fitted quantities (for logging and EXPERIMENTS.md reporting)."""
        if not self._fitted:
            raise NotFittedError("LearnRiskModel.summary requires a fitted model")
        matching_rules = sum(1 for rule in self.features.rules if rule.label == MATCH)
        final_loss = self.training_result.losses[-1] if self.training_result.losses else float("nan")
        return {
            "n_rules": float(len(self.features.rules)),
            "n_matching_rules": float(matching_rules),
            "alpha": self.influence_alpha,
            "beta": self.influence_beta,
            "final_loss": final_loss,
            "n_rank_pairs": float(self.training_result.n_rank_pairs if self.training_result else 0),
        }
