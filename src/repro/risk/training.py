"""Learning-to-rank training of the risk model (Section 6.2).

The trainable parameters are the rule weights, the rule relative standard
deviations (RSD), the two shape parameters (α, β) of the classifier-output
influence function (Eq. 11) and the per-bin RSD of the classifier-output
feature.  Training minimises the pairwise cross-entropy ranking loss of
Eq. 13–15: for a mislabeled pair ``d_i`` and a correctly labeled pair ``d_j``
the model should assign ``γ_i > γ_j``, where γ is the (differentiable,
untruncated-normal) VaR score.  Optimisation is gradient descent through the
:mod:`repro.autodiff` engine with optional L1/L2 regularisation, exactly the
procedure the paper implements on TensorFlow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from ..autodiff import SGD, Adam, Tensor
from ..exceptions import ConfigurationError
from ..serialization import as_float_array, component_state, require_state, state_field

_SOFTPLUS_EPS = 1e-6


def inverse_softplus(value: float) -> float:
    """Return ``x`` such that ``softplus(x) = value`` (used to initialise raw parameters)."""
    if value <= 0:
        raise ConfigurationError("softplus output must be positive")
    return float(np.log(np.expm1(value) + _SOFTPLUS_EPS))


@dataclass
class RiskParameters:
    """The trainable tensors of the risk model.

    ``rule_weight_raw`` and ``rule_rsd_raw`` are passed through softplus so
    the effective weights/RSDs stay positive; ``alpha_raw`` / ``beta_raw``
    likewise parameterise the influence function's positive shape parameters;
    ``output_rsd_raw`` holds one raw RSD per classifier-output bin.
    """

    rule_weight_raw: Tensor
    rule_rsd_raw: Tensor
    alpha_raw: Tensor
    beta_raw: Tensor
    output_rsd_raw: Tensor

    def all_parameters(self) -> list[Tensor]:
        parameters = [self.alpha_raw, self.beta_raw, self.output_rsd_raw]
        if self.rule_weight_raw.size:
            parameters.extend([self.rule_weight_raw, self.rule_rsd_raw])
        return parameters

    def snapshot(self) -> list[np.ndarray]:
        """Copy the current raw parameter values (used for best-epoch selection)."""
        return [parameter.data.copy() for parameter in (
            self.rule_weight_raw, self.rule_rsd_raw, self.alpha_raw,
            self.beta_raw, self.output_rsd_raw,
        )]

    def restore(self, snapshot: list[np.ndarray]) -> None:
        """Restore raw parameter values from a :meth:`snapshot`."""
        tensors = (self.rule_weight_raw, self.rule_rsd_raw, self.alpha_raw,
                   self.beta_raw, self.output_rsd_raw)
        for tensor, values in zip(tensors, snapshot):
            tensor.data = values.copy()

    @classmethod
    def initialise(
        cls,
        n_rules: int,
        n_output_bins: int,
        initial_weight: float = 1.0,
        initial_rsd: float = 0.2,
        initial_alpha: float = 0.2,
        initial_beta: float = 1.0,
    ) -> "RiskParameters":
        """Create the raw parameter tensors with the given effective initial values."""
        weight_init = inverse_softplus(initial_weight)
        rsd_init = inverse_softplus(initial_rsd)
        return cls(
            rule_weight_raw=Tensor(np.full(n_rules, weight_init), requires_grad=True),
            rule_rsd_raw=Tensor(np.full(n_rules, rsd_init), requires_grad=True),
            alpha_raw=Tensor(np.array([inverse_softplus(initial_alpha)]), requires_grad=True),
            beta_raw=Tensor(np.array([inverse_softplus(initial_beta)]), requires_grad=True),
            output_rsd_raw=Tensor(np.full(n_output_bins, rsd_init), requires_grad=True),
        )

    # ------------------------------------------------------------ persistence
    STATE_KIND = "risk_parameters"
    STATE_VERSION = 1

    def to_state(self) -> dict:
        """Export the raw parameter arrays as a state dict."""
        return component_state(self.STATE_KIND, self.STATE_VERSION, {
            "rule_weight_raw": self.rule_weight_raw.data.copy(),
            "rule_rsd_raw": self.rule_rsd_raw.data.copy(),
            "alpha_raw": self.alpha_raw.data.copy(),
            "beta_raw": self.beta_raw.data.copy(),
            "output_rsd_raw": self.output_rsd_raw.data.copy(),
        })

    @classmethod
    def from_state(cls, state: dict) -> "RiskParameters":
        """Rebuild parameters written by :meth:`to_state`."""
        state = require_state(state, cls.STATE_KIND, cls.STATE_VERSION)

        def tensor(field: str) -> Tensor:
            values = as_float_array(
                state_field(state, field, cls.STATE_KIND), field, cls.STATE_KIND
            )
            return Tensor(values.copy(), requires_grad=True)

        return cls(
            rule_weight_raw=tensor("rule_weight_raw"),
            rule_rsd_raw=tensor("rule_rsd_raw"),
            alpha_raw=tensor("alpha_raw"),
            beta_raw=tensor("beta_raw"),
            output_rsd_raw=tensor("output_rsd_raw"),
        )


@dataclass
class TrainingConfig:
    """Hyper-parameters of the risk-model training loop.

    The defaults mirror the paper's setup (confidence 0.9, 1000-epoch budget)
    but use Adam with a moderate learning rate, which reaches the same ranking
    loss in far fewer epochs; set ``optimizer="sgd"`` and
    ``learning_rate=0.001`` for the literal configuration of Eq. 16–17.
    """

    theta: float = 0.9
    epochs: int = 200
    learning_rate: float = 0.05
    optimizer: str = "adam"
    l1: float = 1e-5
    l2: float = 1e-4
    rsd_anchor_l2: float = 0.05
    weight_anchor_l2: float = 0.01
    max_rank_pairs: int = 20000
    holdout_fraction: float = 0.25
    selection_interval: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.theta < 1.0:
            raise ConfigurationError("theta must be in (0, 1)")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.optimizer not in {"adam", "sgd"}:
            raise ConfigurationError("optimizer must be 'adam' or 'sgd'")


@dataclass
class TrainingResult:
    """Loss trajectory and the sampled ranking-pair count of one training run."""

    losses: list[float] = field(default_factory=list)
    n_rank_pairs: int = 0
    trained: bool = False
    best_epoch: int = 0
    best_holdout_auroc: float = float("nan")

    def to_dict(self) -> dict:
        """JSON-safe representation used by the persistence protocol."""
        return {
            "losses": [float(loss) for loss in self.losses],
            "n_rank_pairs": self.n_rank_pairs,
            "trained": self.trained,
            "best_epoch": self.best_epoch,
            "best_holdout_auroc": self.best_holdout_auroc,
        }

    @classmethod
    def from_dict(cls, values: dict) -> "TrainingResult":
        """Rebuild a result written by :meth:`to_dict`."""
        return cls(
            losses=[float(loss) for loss in values.get("losses", [])],
            n_rank_pairs=int(values.get("n_rank_pairs", 0)),
            trained=bool(values.get("trained", False)),
            best_epoch=int(values.get("best_epoch", 0)),
            best_holdout_auroc=float(values.get("best_holdout_auroc", float("nan"))),
        )


def _rank_auroc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Tie-aware AUROC used for best-epoch selection (local copy to avoid import cycles)."""
    labels = np.asarray(labels, dtype=int)
    scores = np.asarray(scores, dtype=float)
    positives = int(labels.sum())
    negatives = len(labels) - positives
    if positives == 0 or negatives == 0:
        return float("nan")
    # Average ranks over ties in one sorted reduceat pass: tie groups are
    # contiguous runs in the sorted order, their ordinal ranks are consecutive
    # integers (exactly representable in float64), so the segmented sum /
    # count reproduces the per-group mean bit-for-bit without the legacy
    # O(unique * n) per-value mask loop.
    n_scores = len(scores)
    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    # A new group starts where the sorted value changes; adjacent NaNs do not
    # open one (NaN != NaN is True, but np.unique — the legacy tie grouping —
    # treats all NaNs as one tie group, and argsort sorts them to the end).
    changed = sorted_scores[1:] != sorted_scores[:-1]
    changed &= ~(np.isnan(sorted_scores[1:]) & np.isnan(sorted_scores[:-1]))
    group_starts = np.flatnonzero(np.r_[True, changed])
    ordinal_ranks = np.arange(1, n_scores + 1, dtype=float)
    group_sums = np.add.reduceat(ordinal_ranks, group_starts)
    group_counts = np.diff(np.append(group_starts, n_scores))
    ranks = np.empty(n_scores, dtype=float)
    ranks[order] = np.repeat(group_sums / group_counts, group_counts)
    u_statistic = float(ranks[labels == 1].sum()) - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


def output_bin_matrix(probabilities: np.ndarray, n_bins: int) -> np.ndarray:
    """One-hot ``(n_pairs, n_bins)`` matrix assigning each classifier output to a bin."""
    probabilities = np.asarray(probabilities, dtype=float)
    bins = np.clip((probabilities * n_bins).astype(int), 0, n_bins - 1)
    matrix = np.zeros((len(probabilities), n_bins), dtype=float)
    matrix[np.arange(len(probabilities)), bins] = 1.0
    return matrix


def sample_ranking_pairs(
    risk_labels: np.ndarray, max_pairs: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sample (mislabeled, correct) index pairs for the ranking loss.

    Returns the index arrays ``(positives, negatives)`` of equal length; when
    the full cross product is small it is used exhaustively, otherwise pairs
    are sampled uniformly at random.
    """
    risk_labels = np.asarray(risk_labels, dtype=int)
    positive_indices = np.nonzero(risk_labels == 1)[0]
    negative_indices = np.nonzero(risk_labels == 0)[0]
    if len(positive_indices) == 0 or len(negative_indices) == 0:
        return np.array([], dtype=int), np.array([], dtype=int)
    total = len(positive_indices) * len(negative_indices)
    if total <= max_pairs:
        positives = np.repeat(positive_indices, len(negative_indices))
        negatives = np.tile(negative_indices, len(positive_indices))
        return positives, negatives
    rng = np.random.default_rng(seed)
    positives = rng.choice(positive_indices, size=max_pairs, replace=True)
    negatives = rng.choice(negative_indices, size=max_pairs, replace=True)
    return positives, negatives


def differentiable_var_scores(
    parameters: RiskParameters,
    membership: np.ndarray,
    rule_means: np.ndarray,
    output_probabilities: np.ndarray,
    output_bins: np.ndarray,
    machine_labels: np.ndarray,
    theta: float,
) -> Tensor:
    """Compute the differentiable VaR score γ of every pair as a Tensor.

    Mirrors :func:`repro.risk.metrics.value_at_risk` with the untruncated
    normal quantile so gradients flow to every parameter.
    """
    n_pairs = len(output_probabilities)
    z_theta = float(stats.norm.ppf(theta))
    membership_tensor = Tensor(membership)
    probabilities = np.asarray(output_probabilities, dtype=float)

    # Classifier-output feature: weight from the influence function (Eq. 11),
    # expectation = the classifier probability, std = per-bin RSD * expectation.
    alpha = parameters.alpha_raw.softplus()
    beta = parameters.beta_raw.softplus()
    deviation = Tensor((probabilities - 0.5) ** 2)
    gaussian_term = ((deviation / (alpha * alpha * 2.0)) * -1.0).exp()
    output_weight = gaussian_term * -1.0 + beta + 1.0
    output_rsd = Tensor(output_bins).matmul(parameters.output_rsd_raw.softplus())
    output_mean = Tensor(probabilities)
    output_std = output_rsd * output_mean

    if membership.shape[1] > 0:
        rule_weight = parameters.rule_weight_raw.softplus()
        rule_rsd = parameters.rule_rsd_raw.softplus()
        rule_mean_tensor = Tensor(rule_means)
        rule_std = rule_rsd * rule_mean_tensor
        total_weight = membership_tensor.matmul(rule_weight) + output_weight
        weighted_mean = (
            membership_tensor.matmul(rule_weight * rule_mean_tensor)
            + output_weight * output_mean
        )
        weighted_variance = (
            membership_tensor.matmul(rule_weight * rule_weight * rule_std * rule_std)
            + output_weight * output_weight * output_std * output_std
        )
    else:
        total_weight = output_weight
        weighted_mean = output_weight * output_mean
        weighted_variance = output_weight * output_weight * output_std * output_std

    mean = weighted_mean / total_weight
    std = (weighted_variance / (total_weight * total_weight) + 1e-12).sqrt()

    machine_labels = np.asarray(machine_labels, dtype=float)
    labeled_match = Tensor(machine_labels)
    # Loss expectation: p for unmatching-labeled pairs, 1 - p for matching-labeled pairs.
    loss_mean = labeled_match * (1.0 - mean) + (1.0 - labeled_match) * mean
    gamma = loss_mean + std * z_theta
    assert gamma.shape == (n_pairs,)
    return gamma


def ranking_loss(gamma: Tensor, positives: np.ndarray, negatives: np.ndarray) -> Tensor:
    """Pairwise cross-entropy ranking loss (Eq. 13–15) for p̄ = 1 pairs."""
    positive_scores = gamma.take(positives)
    negative_scores = gamma.take(negatives)
    probabilities = (positive_scores - negative_scores).sigmoid().clip(1e-7, 1.0 - 1e-7)
    return -(probabilities.log()).mean()


class RiskModelTrainer:
    """Runs the gradient-descent training loop over a :class:`RiskParameters` set."""

    def __init__(self, config: TrainingConfig) -> None:
        self.config = config

    def train(
        self,
        parameters: RiskParameters,
        membership: np.ndarray,
        rule_means: np.ndarray,
        output_probabilities: np.ndarray,
        machine_labels: np.ndarray,
        risk_labels: np.ndarray,
    ) -> TrainingResult:
        """Optimise ``parameters`` in place; returns the loss trajectory.

        ``risk_labels`` marks mislabeled pairs (1) versus correctly labeled
        pairs (0) in the risk-training (validation) data.  With no mislabeled
        or no correct pair the loss is undefined and the parameters keep their
        initial values (``trained`` is ``False`` in the result).

        A fraction of the risk-training pairs (``holdout_fraction``) is held
        out for best-epoch selection: every ``selection_interval`` epochs the
        holdout AUROC is evaluated and the best parameter snapshot (including
        the initial one) is restored at the end.  This keeps the learned model
        from drifting below its prior on workloads with very few mislabeled
        validation pairs.
        """
        result = TrainingResult()
        risk_labels = np.asarray(risk_labels, dtype=int)
        output_probabilities = np.asarray(output_probabilities, dtype=float)
        machine_labels = np.asarray(machine_labels, dtype=int)

        _, holdout_indices = self._split_holdout(risk_labels)
        fit_risk_labels = risk_labels.copy()
        if holdout_indices is not None:
            # Exclude the holdout pairs from the ranking loss by marking them
            # with a sentinel that sample_ranking_pairs ignores (-1).
            fit_risk_labels = fit_risk_labels.astype(int)
            fit_risk_labels[holdout_indices] = -1

        positives, negatives = sample_ranking_pairs(
            fit_risk_labels, self.config.max_rank_pairs, self.config.seed
        )
        result.n_rank_pairs = len(positives)
        if len(positives) == 0:
            return result

        output_bins = output_bin_matrix(output_probabilities, parameters.output_rsd_raw.size)

        def holdout_auroc() -> float:
            if holdout_indices is None:
                return float("nan")
            gamma = differentiable_var_scores(
                parameters, membership, rule_means, output_probabilities,
                output_bins, machine_labels, self.config.theta,
            ).numpy()
            return _rank_auroc(risk_labels[holdout_indices], gamma[holdout_indices])

        best_snapshot = parameters.snapshot()
        best_auroc = holdout_auroc()
        best_epoch = 0
        trainable = parameters.all_parameters()
        if self.config.optimizer == "adam":
            optimizer = Adam(trainable, learning_rate=self.config.learning_rate)
        else:
            optimizer = SGD(trainable, learning_rate=self.config.learning_rate)

        has_rules = bool(parameters.rule_weight_raw.size)
        # Anchors: the initial effective values act as priors so that a handful
        # of mislabeled validation pairs cannot blow individual variances up.
        initial_rule_rsd = np.log1p(np.exp(parameters.rule_rsd_raw.data.copy()))
        initial_output_rsd = np.log1p(np.exp(parameters.output_rsd_raw.data.copy()))
        initial_weight = np.log1p(np.exp(parameters.rule_weight_raw.data.copy())) if has_rules else None

        for epoch in range(self.config.epochs):
            optimizer.zero_grad()
            gamma = differentiable_var_scores(
                parameters, membership, rule_means, output_probabilities,
                output_bins, machine_labels, self.config.theta,
            )
            loss = ranking_loss(gamma, positives, negatives)
            if has_rules:
                effective = parameters.rule_weight_raw.softplus()
                loss = loss + (effective * effective).sum() * self.config.l2
                loss = loss + effective.abs().sum() * self.config.l1
                weight_drift = effective - initial_weight
                loss = loss + (weight_drift * weight_drift).mean() * self.config.weight_anchor_l2
                rsd_drift = parameters.rule_rsd_raw.softplus() - initial_rule_rsd
                loss = loss + (rsd_drift * rsd_drift).mean() * self.config.rsd_anchor_l2
            output_drift = parameters.output_rsd_raw.softplus() - initial_output_rsd
            loss = loss + (output_drift * output_drift).mean() * self.config.rsd_anchor_l2
            loss.backward()
            optimizer.step()
            result.losses.append(loss.item())

            is_last_epoch = epoch == self.config.epochs - 1
            if holdout_indices is not None and (
                is_last_epoch or (epoch + 1) % self.config.selection_interval == 0
            ):
                current_auroc = holdout_auroc()
                if np.isnan(best_auroc) or (
                    not np.isnan(current_auroc) and current_auroc > best_auroc
                ):
                    best_auroc = current_auroc
                    best_snapshot = parameters.snapshot()
                    best_epoch = epoch + 1

        if holdout_indices is not None and not np.isnan(best_auroc):
            parameters.restore(best_snapshot)
            result.best_epoch = best_epoch
            result.best_holdout_auroc = float(best_auroc)
        result.trained = True
        return result

    def _split_holdout(self, risk_labels: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Stratified split of the risk-training pairs into fit and holdout indices.

        Returns ``(fit_indices, holdout_indices)``; ``holdout_indices`` is
        ``None`` when the holdout would not contain both classes (too little
        data for selection to be meaningful).
        """
        if self.config.holdout_fraction <= 0.0:
            return np.arange(len(risk_labels)), None
        rng = np.random.default_rng(self.config.seed + 17)
        holdout: list[int] = []
        fit: list[int] = []
        for label in (0, 1):
            class_indices = np.nonzero(risk_labels == label)[0]
            rng.shuffle(class_indices)
            split_point = int(round(len(class_indices) * self.config.holdout_fraction))
            holdout.extend(int(i) for i in class_indices[:split_point])
            fit.extend(int(i) for i in class_indices[split_point:])
        holdout_array = np.asarray(sorted(holdout), dtype=int)
        fit_array = np.asarray(sorted(fit), dtype=int)
        holdout_labels = risk_labels[holdout_array] if len(holdout_array) else np.array([])
        fit_labels = risk_labels[fit_array] if len(fit_array) else np.array([])
        if (
            len(holdout_array) == 0
            or holdout_labels.sum() == 0
            or holdout_labels.sum() == len(holdout_array)
            or fit_labels.sum() == 0
            or fit_labels.sum() == len(fit_array)
        ):
            return np.arange(len(risk_labels)), None
        return fit_array, holdout_array
