"""Risk rules: the interpretable risk features of LearnRisk.

A risk rule is *one-sided* (Section 5): a conjunction of threshold conditions
over the basic metrics such that pairs satisfying the conjunction are very
likely equivalent (a *matching* rule) or very likely inequivalent (an
*unmatching* rule).  Nothing is implied about pairs that do not satisfy it.

A rule doubles as a risk feature: its equivalence-probability distribution has
an expectation estimated from the classifier training data (the fraction of
covered training pairs that are true matches) and a learnable variance, and a
learnable weight controls its influence in the portfolio aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..data.records import MATCH
from ..exceptions import PersistenceError


def as_float_matrix(metric_matrix: np.ndarray) -> np.ndarray:
    """Convert to a float64 array, skipping the no-op path entirely.

    Callers that evaluate many rules over one matrix (``rule_matrix``,
    :func:`estimate_expectations`, :func:`remove_redundant_rules`) convert
    once at their boundary and hand the converted matrix to every rule, so
    no per-rule conversion — or copy, for non-float inputs — ever happens.
    """
    if isinstance(metric_matrix, np.ndarray) and metric_matrix.dtype == np.float64:
        return metric_matrix
    return np.asarray(metric_matrix, dtype=float)


@dataclass(frozen=True)
class Condition:
    """A single threshold condition over one basic metric.

    ``metric_index`` refers to a column of the
    :class:`~repro.features.vectorizer.PairVectorizer` matrix; ``metric_name``
    keeps the qualified name (e.g. ``"year.numeric_inequality"``) for
    interpretability.  ``is_leq`` selects ``value <= threshold`` versus
    ``value > threshold``.
    """

    metric_index: int
    metric_name: str
    threshold: float
    is_leq: bool

    def evaluate(self, metric_row: np.ndarray) -> bool:
        """Return whether a single metric vector satisfies the condition."""
        value = metric_row[self.metric_index]
        return value <= self.threshold if self.is_leq else value > self.threshold

    def coverage(self, metric_matrix: np.ndarray) -> np.ndarray:
        """Vectorised membership mask over a metric matrix."""
        column = metric_matrix[:, self.metric_index]
        return column <= self.threshold if self.is_leq else column > self.threshold

    def describe(self) -> str:
        """Human-readable text, e.g. ``"year.numeric_inequality > 0.500"``."""
        operator = "<=" if self.is_leq else ">"
        return f"{self.metric_name} {operator} {self.threshold:.3f}"

    def to_dict(self) -> dict:
        """JSON-safe representation used by the persistence protocol."""
        return {
            "metric_index": self.metric_index,
            "metric_name": self.metric_name,
            "threshold": self.threshold,
            "is_leq": self.is_leq,
        }

    @classmethod
    def from_dict(cls, values: dict) -> "Condition":
        """Rebuild a condition written by :meth:`to_dict`."""
        try:
            return cls(
                metric_index=int(values["metric_index"]),
                metric_name=str(values["metric_name"]),
                threshold=float(values["threshold"]),
                is_leq=bool(values["is_leq"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"corrupted rule condition {values!r}") from exc


@dataclass(frozen=True)
class RiskRule:
    """A one-sided rule used as an interpretable risk feature.

    Parameters
    ----------
    conditions:
        Conjunction of :class:`Condition` objects (the rule's LHS).
    label:
        The implied class of covered pairs: ``MATCH`` or ``UNMATCH``.
    support:
        Number of rule-generation pairs covered by the rule.
    purity:
        Fraction of those pairs whose ground truth equals ``label``.
    expectation:
        Prior equivalence probability of covered pairs, estimated on the
        classifier training data (Section 6.2.1); set by the generator.
    """

    conditions: tuple[Condition, ...]
    label: int
    support: int = 0
    purity: float = 1.0
    expectation: float = 0.5
    name: str = field(default="", compare=False)

    def signature(self) -> tuple:
        """Hashable identity of the rule's logical content (used for dedup)."""
        return (
            tuple(sorted(
                (condition.metric_index, round(condition.threshold, 6), condition.is_leq)
                for condition in self.conditions
            )),
            self.label,
        )

    def coverage(self, metric_matrix: np.ndarray) -> np.ndarray:
        """Boolean mask of the pairs (rows) covered by the rule.

        The conversion below is a no-op for an already-converted float64
        matrix, so batch callers converting once up front (via
        :func:`as_float_matrix`) pay nothing per rule.
        """
        metric_matrix = as_float_matrix(metric_matrix)
        mask = np.ones(len(metric_matrix), dtype=bool)
        for condition in self.conditions:
            mask &= condition.coverage(metric_matrix)
        return mask

    def covers(self, metric_row: np.ndarray) -> bool:
        """Return whether a single pair (metric vector) satisfies the rule."""
        return all(condition.evaluate(metric_row) for condition in self.conditions)

    def is_matching_rule(self) -> bool:
        """``True`` for a rule implying equivalence."""
        return self.label == MATCH

    def describe(self) -> str:
        """Paper-style description, e.g. ``"year.numeric_inequality > 0.5 -> inequivalent"``."""
        consequent = "equivalent" if self.label == MATCH else "inequivalent"
        antecedent = " AND ".join(condition.describe() for condition in self.conditions)
        return f"{antecedent} -> {consequent}"

    def with_expectation(self, expectation: float) -> "RiskRule":
        """Return a copy carrying the estimated prior expectation."""
        return RiskRule(
            conditions=self.conditions,
            label=self.label,
            support=self.support,
            purity=self.purity,
            expectation=float(expectation),
            name=self.name,
        )

    def to_dict(self) -> dict:
        """JSON-safe representation used by the persistence protocol."""
        return {
            "conditions": [condition.to_dict() for condition in self.conditions],
            "label": self.label,
            "support": self.support,
            "purity": self.purity,
            "expectation": self.expectation,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, values: dict) -> "RiskRule":
        """Rebuild a rule written by :meth:`to_dict`."""
        try:
            return cls(
                conditions=tuple(
                    Condition.from_dict(condition) for condition in values["conditions"]
                ),
                label=int(values["label"]),
                support=int(values.get("support", 0)),
                purity=float(values.get("purity", 1.0)),
                expectation=float(values.get("expectation", 0.5)),
                name=str(values.get("name", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"corrupted risk rule state: {exc}") from exc


def estimate_expectations(
    rules: Sequence[RiskRule],
    metric_matrix: np.ndarray,
    labels: np.ndarray,
    smoothing: float = 1.0,
) -> list[RiskRule]:
    """Estimate each rule's prior expectation on the classifier training data.

    The expectation of a rule is the (Laplace-smoothed) fraction of covered
    training pairs that are true matches; rules covering no training pairs fall
    back to a label-consistent prior (0.95 for matching rules, 0.05 for
    unmatching rules).
    """
    metric_matrix = as_float_matrix(metric_matrix)
    labels = np.asarray(labels, dtype=int)
    estimated = []
    for rule in rules:
        mask = rule.coverage(metric_matrix)
        covered = int(mask.sum())
        if covered == 0:
            expectation = 0.95 if rule.label == MATCH else 0.05
        else:
            matches = int(labels[mask].sum())
            expectation = (matches + smoothing) / (covered + 2.0 * smoothing)
        estimated.append(rule.with_expectation(expectation))
    return estimated


def deduplicate_rules(rules: Sequence[RiskRule]) -> list[RiskRule]:
    """Drop rules with identical logical content, keeping the best-supported copy."""
    by_signature: dict[tuple, RiskRule] = {}
    for rule in rules:
        signature = rule.signature()
        existing = by_signature.get(signature)
        if existing is None or rule.support > existing.support:
            by_signature[signature] = rule
    return sorted(by_signature.values(), key=lambda rule: (-rule.support, rule.describe()))


def remove_redundant_rules(
    rules: Sequence[RiskRule], metric_matrix: np.ndarray, min_coverage: int = 1
) -> list[RiskRule]:
    """Remove rules whose coverage over ``metric_matrix`` duplicates another rule's.

    Two rules with exactly the same covered set (and the same label) carry the
    same information; the one with fewer conditions (more interpretable) wins.
    Rules covering fewer than ``min_coverage`` pairs are dropped outright.
    """
    metric_matrix = as_float_matrix(metric_matrix)
    kept: list[RiskRule] = []
    seen_masks: dict[tuple, RiskRule] = {}
    ordered = sorted(rules, key=lambda rule: (len(rule.conditions), -rule.support))
    for rule in ordered:
        mask = rule.coverage(metric_matrix)
        if int(mask.sum()) < min_coverage:
            continue
        key = (rule.label, mask.tobytes())
        if key in seen_masks:
            continue
        seen_masks[key] = rule
        kept.append(rule)
    return kept
