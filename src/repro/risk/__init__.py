"""LearnRisk: risk features, portfolio risk model, VaR metrics and training."""

from .distributions import (
    NormalDistribution,
    beta_to_normal,
    equivalence_sample_expectation,
    normal_quantile,
    truncated_normal_mean,
    truncated_normal_quantile,
)
from .engine import PackedMembership, RuleKernel, legacy_rule_matrix
from .feature_generation import GeneratedRiskFeatures, RiskFeatureGenerator
from .metrics import (
    conditional_value_at_risk,
    expectation_risk,
    rank_by_risk,
    register_risk_metric,
    registered_risk_metrics,
    resolve_risk_metric,
    value_at_risk,
)
from .model import FeatureExplanation, LearnRiskModel
from .onesided_tree import (
    OneSidedSplit,
    OneSidedTreeBuilder,
    OneSidedTreeConfig,
    best_one_sided_split,
    gini_value,
    one_sided_gini,
)
from .portfolio import PortfolioDistribution, aggregate_portfolio, feature_contributions
from .rules import (
    Condition,
    RiskRule,
    deduplicate_rules,
    estimate_expectations,
    remove_redundant_rules,
)
from .training import (
    RiskModelTrainer,
    RiskParameters,
    TrainingConfig,
    TrainingResult,
    output_bin_matrix,
    sample_ranking_pairs,
)

__all__ = [
    "Condition",
    "FeatureExplanation",
    "GeneratedRiskFeatures",
    "LearnRiskModel",
    "NormalDistribution",
    "OneSidedSplit",
    "OneSidedTreeBuilder",
    "OneSidedTreeConfig",
    "PackedMembership",
    "PortfolioDistribution",
    "RiskFeatureGenerator",
    "RiskModelTrainer",
    "RiskParameters",
    "RiskRule",
    "RuleKernel",
    "TrainingConfig",
    "TrainingResult",
    "aggregate_portfolio",
    "best_one_sided_split",
    "beta_to_normal",
    "conditional_value_at_risk",
    "deduplicate_rules",
    "equivalence_sample_expectation",
    "estimate_expectations",
    "expectation_risk",
    "feature_contributions",
    "gini_value",
    "legacy_rule_matrix",
    "normal_quantile",
    "one_sided_gini",
    "output_bin_matrix",
    "rank_by_risk",
    "register_risk_metric",
    "registered_risk_metrics",
    "remove_redundant_rules",
    "resolve_risk_metric",
    "sample_ranking_pairs",
    "truncated_normal_mean",
    "truncated_normal_quantile",
    "value_at_risk",
]
