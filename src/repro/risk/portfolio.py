"""Portfolio aggregation of risk-feature distributions (Section 4.2, Eq. 2–3).

Each pair is a *portfolio* whose component *stocks* are its risk features: the
one-sided rules covering it plus the classifier-output feature.  The pair's
equivalence-probability distribution is the weighted aggregate of its
components' distributions.  We use the weight-normalised portfolio form

    μ_i  = Σ_j x_ij · w_j · μ_j   /  Σ_j x_ij · w_j
    σ²_i = Σ_j x_ij · w_j² · σ_j² / (Σ_j x_ij · w_j)²

which is Eq. 2–3 with the weights normalised per pair so that μ_i stays a valid
probability (see DESIGN.md).  This module contains the plain-numpy version used
at scoring time; the differentiable version used by training lives in
:mod:`repro.risk.training` and mirrors the same formulas with
:class:`~repro.autodiff.Tensor` operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..numerics import batch_invariant_matvec as _matvec
from .engine import PackedMembership

_MINIMUM_TOTAL_WEIGHT = 1e-12
#: Rows unpacked at a time when aggregating a PackedMembership: bounds the
#: transient dense matrix to chunk_rows x n_rules floats.
_PACKED_CHUNK_ROWS = 4096


@dataclass(frozen=True)
class PortfolioDistribution:
    """Per-pair aggregated equivalence-probability distribution."""

    means: np.ndarray
    variances: np.ndarray

    @property
    def stds(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.variances, 0.0))

    def __len__(self) -> int:
        return len(self.means)


def aggregate_portfolio(
    membership: np.ndarray | PackedMembership,
    rule_weights: np.ndarray,
    rule_means: np.ndarray,
    rule_stds: np.ndarray,
    output_weights: np.ndarray | None = None,
    output_means: np.ndarray | None = None,
    output_stds: np.ndarray | None = None,
) -> PortfolioDistribution:
    """Aggregate rule and classifier-output features into per-pair distributions.

    Parameters
    ----------
    membership:
        Binary ``(n_pairs, n_rules)`` matrix: ``membership[i, j] = 1`` when
        pair ``i`` has rule feature ``j``.  A bit-packed
        :class:`~repro.risk.engine.PackedMembership` (as produced by
        :meth:`RuleKernel.membership_packed`) is accepted directly and is
        aggregated chunk-wise, so the transient dense form never exceeds
        ``_PACKED_CHUNK_ROWS`` rows and the packed memory saving survives
        aggregation.
    rule_weights, rule_means, rule_stds:
        Per-rule weight, expectation and standard deviation (length ``n_rules``).
    output_weights, output_means, output_stds:
        Per-pair weight, expectation and standard deviation of the
        classifier-output feature; omit all three to aggregate rules only.
    """
    rule_weights = np.asarray(rule_weights, dtype=float)
    rule_means = np.asarray(rule_means, dtype=float)
    rule_stds = np.asarray(rule_stds, dtype=float)
    if isinstance(membership, PackedMembership):
        n_pairs, n_rules = membership.shape
    else:
        # C order up front: the batch-invariant matvec normalises layout (the
        # summation association follows the strides), so converting the rule
        # kernel's F-ordered output once here saves two of the three copies.
        membership = np.ascontiguousarray(membership, dtype=float)
        n_pairs, n_rules = membership.shape
    if not (len(rule_weights) == len(rule_means) == len(rule_stds) == n_rules):
        raise ConfigurationError("rule weight/mean/std lengths must match the membership matrix")

    mean_weights = rule_weights * rule_means
    variance_weights = rule_weights ** 2 * rule_stds ** 2
    if isinstance(membership, PackedMembership):
        total_weight = np.empty(n_pairs)
        weighted_mean = np.empty(n_pairs)
        weighted_variance = np.empty(n_pairs)
        for start in range(0, n_pairs, _PACKED_CHUNK_ROWS):
            stop = min(start + _PACKED_CHUNK_ROWS, n_pairs)
            chunk = np.ascontiguousarray(
                PackedMembership(membership.bits[start:stop], n_rules).unpack(float)
            )
            total_weight[start:stop] = _matvec(chunk, rule_weights)
            weighted_mean[start:stop] = _matvec(chunk, mean_weights)
            weighted_variance[start:stop] = _matvec(chunk, variance_weights)
    else:
        total_weight = _matvec(membership, rule_weights)
        weighted_mean = _matvec(membership, mean_weights)
        weighted_variance = _matvec(membership, variance_weights)

    has_output = output_weights is not None
    if has_output:
        output_weights = np.asarray(output_weights, dtype=float)
        output_means = np.asarray(output_means, dtype=float)
        output_stds = np.asarray(output_stds, dtype=float)
        if not (len(output_weights) == len(output_means) == len(output_stds) == n_pairs):
            raise ConfigurationError("output feature arrays must have one entry per pair")
        total_weight = total_weight + output_weights
        weighted_mean = weighted_mean + output_weights * output_means
        weighted_variance = weighted_variance + output_weights ** 2 * output_stds ** 2

    safe_total = np.maximum(total_weight, _MINIMUM_TOTAL_WEIGHT)
    means = weighted_mean / safe_total
    variances = weighted_variance / safe_total ** 2
    # Pairs with no feature at all fall back to a maximally uncertain prior.
    uncovered = total_weight <= _MINIMUM_TOTAL_WEIGHT
    if np.any(uncovered):
        means = means.copy()
        variances = variances.copy()
        means[uncovered] = 0.5
        variances[uncovered] = 0.25
    return PortfolioDistribution(means=means, variances=variances)


def feature_contributions(
    membership_row: np.ndarray,
    rule_weights: np.ndarray,
    rule_means: np.ndarray,
    output_weight: float | None = None,
    output_mean: float | None = None,
) -> list[tuple[int, float]]:
    """Per-feature contribution shares to one pair's aggregated expectation.

    Returns ``(feature_index, share)`` tuples where ``feature_index`` is the
    rule index or ``-1`` for the classifier-output feature, and the shares sum
    to 1.  Used by the interpretability API (:meth:`LearnRiskModel.explain`).
    """
    membership_row = np.asarray(membership_row, dtype=float)
    weights = membership_row * np.asarray(rule_weights, dtype=float)
    total = float(weights.sum())
    contributions: list[tuple[int, float]] = []
    if output_weight is not None:
        total += float(output_weight)
    if total <= _MINIMUM_TOTAL_WEIGHT:
        return contributions
    for index in np.nonzero(membership_row > 0)[0]:
        contributions.append((int(index), float(weights[index] / total)))
    if output_weight is not None:
        contributions.append((-1, float(output_weight / total)))
    contributions.sort(key=lambda item: -item[1])
    return contributions
