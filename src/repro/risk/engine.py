"""Vectorised rule-coverage engine: the scoring hot path of LearnRisk.

Every consumer of the risk model — :meth:`LearnRiskModel.score`, the trainer's
:func:`differentiable_var_scores`, the serving layer, the static-risk baseline
— needs the binary membership matrix ``membership[i, j] = 1`` iff pair ``i``
satisfies rule ``j``.  The legacy implementation walks the rule list in Python
and evaluates each condition as a separate numpy comparison per rule, which
makes membership the dominant cost of batch scoring (Section 7.6 of the paper
argues risk scoring must stay cheap for the approach to scale).

:class:`RuleKernel` compiles a rule set once into flat condition arrays and
computes the full ``(n_pairs, n_rules)`` matrix with a handful of broadcasted
numpy operations — no per-rule Python loop.

Packed-condition layout
-----------------------
At construction the kernel deduplicates the conditions of all rules (one-sided
trees share split prefixes, so forests repeat conditions heavily) and stores:

``_unique_columns`` (``int64``, shape ``(n_unique,)``)
    Metric-matrix column of each distinct condition.
``_unique_thresholds`` (``float64``, shape ``(n_unique,)``)
    Threshold of each distinct condition.
``_unique_is_leq`` (``bool``, shape ``(n_unique,)``)
    Sign of each distinct condition: ``True`` for ``value <= threshold``,
    ``False`` for ``value > threshold``.
``_condition_slots`` (``int64``, shape ``(total_conditions,)``)
    The rules' conjunctions flattened end to end; each entry indexes a unique
    condition.  Rule ``j`` owns the slice
    ``_condition_slots[_offsets[j]:_offsets[j + 1]]``.
``_offsets`` (``int64``, shape ``(n_rules + 1,)``)
    Segment boundaries of the flattened layout above.

The conjunctions are additionally re-sliced by *level* (first condition of
every rule, second condition of every rule that has one, ...), giving
``_level_rules[L]`` / ``_level_slots[L]`` index pairs; the number of levels is
the deepest rule's condition count, independent of the rule count.

Evaluation works in a transposed, condition-major layout so every gather and
in-place AND touches contiguous rows (column-wise fancy indexing on C-order
matrices is 1–2 orders of magnitude slower).  Per row chunk of ``M``:

1. the chunk is transposed once to ``(n_metrics, chunk)`` so each condition
   reads a contiguous value row; every unique condition then fills its row of
   the boolean ``passesT`` matrix with a single ``np.less_equal`` /
   ``np.greater`` call writing straight into the preallocated buffer.  The
   direct comparisons keep the exact NaN semantics of the legacy scalar loop
   (NaN satisfies neither ``<=`` nor ``>``);
2. ``membT = passesT[_level_slots[0]]`` — one contiguous row gather seeds the
   membership with every rule's first condition;
3. ``membT[_level_rules[L]] &= passesT[_level_slots[L]]`` for each deeper
   level — the whole forest's conjunctions as ``max_depth - 1`` fused ANDs;
4. the result is transposed back into the caller's ``(n_pairs, n_rules)``
   layout while materialising the requested dtype, one pass.

The result is bit-identical to the legacy per-rule loop (including NaN
handling) and 5-8x faster at serving batch sizes (10k-200k pairs x 50-200
rules); see ``benchmarks/bench_rule_engine.py`` and ``BENCH_rule_engine.json``.

For memory-bound workloads :meth:`RuleKernel.membership_packed` returns a
:class:`PackedMembership` — the boolean matrix bit-packed along the rule axis
(``np.uint8``, 8 rules per byte), accepted directly by
:func:`repro.risk.portfolio.aggregate_portfolio`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .rules import RiskRule

#: Soft cap on the size of the per-chunk boolean temporaries, in elements.
#: Large enough to amortise the per-condition Python dispatch, small enough
#: that a chunk's pass matrix (one byte per element) stays cache-friendly —
#: measured best across 10k-200k pairs x 50-200 rules on the dev box.
_TARGET_CHUNK_ELEMENTS = 1 << 21


@dataclass(frozen=True)
class PackedMembership:
    """Bit-packed rule membership: 8 rules per byte along the last axis.

    ``bits`` has shape ``(n_pairs, ceil(n_rules / 8))`` and dtype ``uint8``;
    bit ``j % 8`` (most-significant first, the :func:`np.packbits` layout) of
    byte ``j // 8`` in row ``i`` is pair ``i``'s membership in rule ``j``.
    """

    bits: np.ndarray
    n_rules: int

    def __len__(self) -> int:
        return len(self.bits)

    @property
    def shape(self) -> tuple[int, int]:
        """The logical (unpacked) matrix shape."""
        return (len(self.bits), self.n_rules)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the packed representation."""
        return int(self.bits.nbytes)

    def unpack(self, dtype: np.dtype | type = float) -> np.ndarray:
        """Expand back to a dense ``(n_pairs, n_rules)`` matrix of ``dtype``.

        The result is Fortran-ordered like :meth:`RuleKernel.membership`
        output, so the packed and dense paths hand downstream consumers the
        same layout and stay bit-identical end to end (the batch-invariant
        reductions of :mod:`repro.numerics` then normalise layout themselves).
        """
        if self.n_rules == 0:
            return np.zeros((len(self.bits), 0), dtype=dtype)
        unpacked = np.unpackbits(self.bits, axis=1, count=self.n_rules)
        return unpacked.astype(dtype, order="F")


class RuleKernel:
    """Compiled evaluator of a fixed rule set (see module docstring).

    Parameters
    ----------
    rules:
        The one-sided rules to compile.  The kernel snapshots their conditions
        at construction; rebuild the kernel if the rule set changes.
    chunk_rows:
        Rows evaluated per chunk.  ``None`` picks a size that keeps the
        per-chunk temporaries around ``_TARGET_CHUNK_ELEMENTS`` elements.
    """

    def __init__(self, rules: Sequence[RiskRule], chunk_rows: int | None = None) -> None:
        if chunk_rows is not None and chunk_rows < 1:
            raise ConfigurationError("chunk_rows must be >= 1")
        self.n_rules = len(rules)

        unique_index: dict[tuple[int, float, bool], int] = {}
        columns: list[int] = []
        thresholds: list[float] = []
        is_leq: list[bool] = []
        slots: list[int] = []
        offsets = [0]
        for rule in rules:
            for condition in rule.conditions:
                key = (condition.metric_index, condition.threshold, condition.is_leq)
                slot = unique_index.get(key)
                if slot is None:
                    slot = len(columns)
                    unique_index[key] = slot
                    columns.append(condition.metric_index)
                    thresholds.append(condition.threshold)
                    is_leq.append(condition.is_leq)
                slots.append(slot)
            offsets.append(len(slots))

        self.n_conditions = len(slots)
        self.n_unique_conditions = len(columns)
        self._unique_columns = np.asarray(columns, dtype=np.int64)
        self._unique_thresholds = np.asarray(thresholds, dtype=np.float64)
        self._unique_is_leq = np.asarray(is_leq, dtype=bool)

        # Re-slice the flattened conjunctions by level: level L pairs every
        # rule having > L conditions with its (L+1)-th condition's slot.
        level_rules: list[np.ndarray] = []
        level_slots: list[np.ndarray] = []
        depth = 0
        while True:
            members = [
                (j, slots[offsets[j] + depth])
                for j in range(self.n_rules)
                if offsets[j] + depth < offsets[j + 1]
            ]
            if not members:
                break
            level_rules.append(np.asarray([j for j, _ in members], dtype=np.int64))
            level_slots.append(np.asarray([s for _, s in members], dtype=np.int64))
            depth += 1
        self._level_rules = level_rules
        self._level_slots = level_slots
        self.max_conditions = depth

        if chunk_rows is None:
            per_row = max(1, self.n_unique_conditions, self.n_rules)
            chunk_rows = max(4096, _TARGET_CHUNK_ELEMENTS // per_row)
        self.chunk_rows = int(chunk_rows)

    # ------------------------------------------------------------- evaluation
    def _membership_transposed(self, chunk: np.ndarray) -> np.ndarray:
        """Boolean (n_rules, chunk) membership of one row chunk (the hot loop)."""
        n_chunk = len(chunk)
        # One transpose buys every condition a contiguous value row.
        values_by_metric = np.ascontiguousarray(chunk.T)
        passes = np.empty((self.n_unique_conditions, n_chunk), dtype=bool)
        columns = self._unique_columns
        thresholds = self._unique_thresholds
        is_leq = self._unique_is_leq
        for slot in range(self.n_unique_conditions):
            # Direct comparisons, not a negation trick: NaN satisfies neither
            # `<= t` nor `> t`, exactly like the legacy scalar loop.
            compare = np.less_equal if is_leq[slot] else np.greater
            compare(values_by_metric[columns[slot]], thresholds[slot], out=passes[slot])
        if not self._level_rules:
            # Only trivial (condition-free) rules: everything is covered.
            return np.ones((self.n_rules, n_chunk), dtype=bool)
        if len(self._level_rules[0]) == self.n_rules:
            membership = passes[self._level_slots[0]]
        else:
            membership = np.ones((self.n_rules, n_chunk), dtype=bool)
            membership[self._level_rules[0]] = passes[self._level_slots[0]]
        for rules_at_level, slots_at_level in zip(self._level_rules[1:], self._level_slots[1:]):
            membership[rules_at_level] &= passes[slots_at_level]
        return membership

    def _apply(self, metric_matrix: np.ndarray, write_chunk) -> None:
        """Run the chunked evaluation, handing each transposed chunk to ``write_chunk``."""
        n_pairs = len(metric_matrix)
        for start in range(0, n_pairs, self.chunk_rows):
            stop = min(start + self.chunk_rows, n_pairs)
            write_chunk(start, stop, self._membership_transposed(metric_matrix[start:stop]))

    def _checked_matrix(self, metric_matrix: np.ndarray) -> np.ndarray:
        metric_matrix = np.asarray(metric_matrix, dtype=float)
        if metric_matrix.ndim != 2:
            raise ConfigurationError(
                f"metric matrix must be 2-dimensional, got shape {metric_matrix.shape}"
            )
        return metric_matrix

    def membership(self, metric_matrix: np.ndarray, dtype: np.dtype | type = float) -> np.ndarray:
        """``(n_pairs, n_rules)`` membership matrix cast to ``dtype``.

        The default ``float`` output matches the legacy ``rule_matrix`` API
        value for value; pass ``dtype=bool`` for the smallest dense form.
        The array is Fortran-ordered — the rule-major layout the kernel
        computes in — so materialising it is a contiguous cast instead of a
        cache-hostile strided transpose (4-5x faster at serving batch sizes).
        Consumers are layout-agnostic value-wise; reductions that must be
        *bit*-reproducible across batch sizes normalise the layout themselves
        (see :mod:`repro.numerics` and ``aggregate_portfolio``).
        """
        metric_matrix = self._checked_matrix(metric_matrix)
        out = np.empty((len(metric_matrix), self.n_rules), dtype=dtype, order="F")
        # The back-transpose materialises the requested dtype in the same
        # pass, so no intermediate (n_pairs, n_rules) bool copy exists.
        self._apply(metric_matrix, lambda start, stop, memb: np.copyto(out[start:stop], memb.T))
        return out

    def membership_bool(self, metric_matrix: np.ndarray) -> np.ndarray:
        """Boolean ``(n_pairs, n_rules)`` membership matrix."""
        return self.membership(metric_matrix, dtype=bool)

    def membership_packed(self, metric_matrix: np.ndarray) -> PackedMembership:
        """Bit-packed membership for memory-bound workloads (8 rules per byte)."""
        metric_matrix = self._checked_matrix(metric_matrix)
        n_pairs = len(metric_matrix)
        bits = np.empty((n_pairs, (self.n_rules + 7) // 8), dtype=np.uint8)
        self._apply(
            metric_matrix,
            lambda start, stop, memb: np.copyto(bits[start:stop], np.packbits(memb.T, axis=1)),
        )
        return PackedMembership(bits=bits, n_rules=self.n_rules)


def legacy_rule_matrix(rules: Sequence[RiskRule], metric_matrix: np.ndarray) -> np.ndarray:
    """The pre-kernel per-rule Python loop, kept as the parity/benchmark reference.

    This is exactly what :meth:`GeneratedRiskFeatures.rule_matrix` did before
    the kernel existed; tests assert the kernel is bit-identical to it and
    ``benchmarks/bench_rule_engine.py`` measures the speedup against it.
    """
    metric_matrix = np.asarray(metric_matrix, dtype=float)
    if not rules:
        return np.zeros((len(metric_matrix), 0), dtype=float)
    columns = [rule.coverage(metric_matrix).astype(float) for rule in rules]
    return np.column_stack(columns)
