"""Probability distributions used by the risk model.

The risk model represents a pair's equivalence probability as a normal
distribution (an approximation of the Beta posterior justified in Section 4.2),
truncated to ``[0, 1]`` because the underlying quantity is a probability.  This
module provides the distribution helpers: Beta→Normal approximation, the
truncated-normal quantile used when *scoring* pairs, and the plain normal
quantile used as the differentiable surrogate when *training*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class NormalDistribution:
    """A (possibly truncated) normal distribution over the equivalence probability."""

    mean: float
    variance: float

    @property
    def std(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))

    def quantile(self, level: float, truncated: bool = True) -> float:
        """Return the ``level``-quantile, optionally truncated to [0, 1]."""
        return float(
            truncated_normal_quantile(np.array([self.mean]), np.array([self.std]), level)[0]
            if truncated
            else normal_quantile(np.array([self.mean]), np.array([self.std]), level)[0]
        )


def beta_to_normal(alpha: float, beta: float) -> NormalDistribution:
    """Approximate a Beta(α, β) distribution by a normal with matched moments.

    Valid when α and β are reasonably large (>= 10 per the paper); smaller
    values still return the moment-matched normal, which is what the model
    uses as a smooth prior.
    """
    if alpha <= 0 or beta <= 0:
        raise ConfigurationError("Beta shape parameters must be positive")
    mean = alpha / (alpha + beta)
    variance = alpha * beta / ((alpha + beta) ** 2 * (alpha + beta + 1.0))
    return NormalDistribution(mean=float(mean), variance=float(variance))


def normal_quantile(means: np.ndarray, stds: np.ndarray, level: float) -> np.ndarray:
    """Quantile of untruncated normals: ``μ + z_level·σ`` (vectorised)."""
    if not 0.0 < level < 1.0:
        raise ConfigurationError("quantile level must be in (0, 1)")
    z_value = float(stats.norm.ppf(level))
    return np.asarray(means, dtype=float) + z_value * np.asarray(stds, dtype=float)


def truncated_normal_quantile(
    means: np.ndarray,
    stds: np.ndarray,
    level: float,
    lower: float = 0.0,
    upper: float = 1.0,
) -> np.ndarray:
    """Quantile of normals truncated to ``[lower, upper]`` (vectorised).

    Pairs with a (near-)zero standard deviation degenerate to their clipped
    mean, which is the correct limiting behaviour.
    """
    if not 0.0 < level < 1.0:
        raise ConfigurationError("quantile level must be in (0, 1)")
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)
    result = np.clip(means, lower, upper)
    positive = stds > 1e-12
    if np.any(positive):
        mu = means[positive]
        sigma = stds[positive]
        alpha = (lower - mu) / sigma
        beta = (upper - mu) / sigma
        lower_cdf = stats.norm.cdf(alpha)
        upper_cdf = stats.norm.cdf(beta)
        probabilities = lower_cdf + level * (upper_cdf - lower_cdf)
        probabilities = np.clip(probabilities, 1e-12, 1.0 - 1e-12)
        result[positive] = mu + sigma * stats.norm.ppf(probabilities)
    return np.clip(result, lower, upper)


def truncated_normal_mean(
    means: np.ndarray, stds: np.ndarray, lower: float = 0.0, upper: float = 1.0
) -> np.ndarray:
    """Mean of normals truncated to ``[lower, upper]`` (used by diagnostics)."""
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)
    result = np.clip(means, lower, upper)
    positive = stds > 1e-12
    if np.any(positive):
        mu = means[positive]
        sigma = stds[positive]
        alpha = (lower - mu) / sigma
        beta = (upper - mu) / sigma
        denominator = np.maximum(stats.norm.cdf(beta) - stats.norm.cdf(alpha), 1e-12)
        adjustment = (stats.norm.pdf(alpha) - stats.norm.pdf(beta)) / denominator
        result[positive] = mu + sigma * adjustment
    return np.clip(result, lower, upper)


def equivalence_sample_expectation(matches: int, total: int, smoothing: float = 1.0) -> float:
    """Laplace-smoothed expectation ``(m + s) / (n + 2s)`` used for rule priors."""
    if total < 0 or matches < 0 or matches > total:
        raise ConfigurationError("invalid match/total counts")
    return (matches + smoothing) / (total + 2.0 * smoothing)
