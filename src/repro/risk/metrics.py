"""Risk metrics: Value at Risk and Conditional Value at Risk (Section 6.1).

Given a pair's equivalence-probability distribution and its machine label, the
*loss* is the probability that the label is wrong: the equivalence probability
itself for a pair labeled unmatching, and one minus it for a pair labeled
matching.  VaR at confidence θ is the θ-quantile of that loss — "the maximum
mislabeling probability after excluding the (1−θ) worst cases" (Eq. 8–10).
CVaR is the expectation of the loss beyond VaR and is provided for the
StaticRisk baseline and for ablations.

The metrics are exposed through a string-keyed registry
(:func:`register_risk_metric` / :func:`resolve_risk_metric`) so that
:class:`~repro.risk.model.LearnRiskModel` and the composable pipeline API can
dispatch on a configured metric name, and downstream code can plug in custom
metrics without touching this module.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import stats

from ..data.records import MATCH
from ..exceptions import ConfigurationError
from ..registry import ComponentRegistry
from .distributions import normal_quantile, truncated_normal_quantile
from .portfolio import PortfolioDistribution


def _validate_inputs(distribution: PortfolioDistribution, machine_labels: np.ndarray) -> np.ndarray:
    machine_labels = np.asarray(machine_labels, dtype=int)
    if len(machine_labels) != len(distribution):
        raise ConfigurationError("machine_labels must have one entry per pair")
    return machine_labels


def value_at_risk(
    distribution: PortfolioDistribution,
    machine_labels: np.ndarray,
    theta: float = 0.9,
    truncated: bool = True,
) -> np.ndarray:
    """VaR risk score of each pair (higher = more likely mislabeled).

    Parameters
    ----------
    distribution:
        Aggregated equivalence-probability distributions.
    machine_labels:
        The classifier's labels (``MATCH``/``UNMATCH``) for the same pairs.
    theta:
        Confidence level (0.9 in the paper).
    truncated:
        Use the truncated-normal quantile (scoring); the untruncated form is
        the differentiable surrogate used by training.
    """
    if not 0.0 < theta < 1.0:
        raise ConfigurationError("theta must be in (0, 1)")
    machine_labels = _validate_inputs(distribution, machine_labels)
    means = distribution.means
    stds = distribution.stds
    quantile = truncated_normal_quantile if truncated else normal_quantile
    # Pair labeled unmatching: loss is p, VaR = F^{-1}(θ).
    unmatch_risk = quantile(means, stds, theta)
    # Pair labeled matching: loss is 1 - p, VaR = 1 - F^{-1}(1 - θ).
    match_risk = 1.0 - quantile(means, stds, 1.0 - theta)
    labeled_match = machine_labels == MATCH
    risk = np.where(labeled_match, match_risk, unmatch_risk)
    return np.clip(risk, 0.0, 1.0) if truncated else risk


def expectation_risk(
    distribution: PortfolioDistribution, machine_labels: np.ndarray
) -> np.ndarray:
    """Risk measured by the expected mislabeling probability only (no fluctuation term).

    This is the ablation the paper argues against: ignoring the variance loses
    the "fluctuation risk" that VaR captures.
    """
    machine_labels = _validate_inputs(distribution, machine_labels)
    means = np.clip(distribution.means, 0.0, 1.0)
    labeled_match = machine_labels == MATCH
    return np.where(labeled_match, 1.0 - means, means)


def conditional_value_at_risk(
    distribution: PortfolioDistribution,
    machine_labels: np.ndarray,
    theta: float = 0.9,
) -> np.ndarray:
    """CVaR (expected loss beyond the VaR quantile) under the normal model.

    For a normal loss with mean ``m`` and std ``s``,
    ``CVaR_θ = m + s · φ(z_θ) / (1 − θ)``; the loss mean/std per pair follow
    the same labeled-matching/unmatching convention as :func:`value_at_risk`.
    """
    if not 0.0 < theta < 1.0:
        raise ConfigurationError("theta must be in (0, 1)")
    machine_labels = _validate_inputs(distribution, machine_labels)
    means = distribution.means
    stds = distribution.stds
    labeled_match = machine_labels == MATCH
    loss_means = np.where(labeled_match, 1.0 - means, means)
    z_theta = float(stats.norm.ppf(theta))
    tail_factor = float(stats.norm.pdf(z_theta) / (1.0 - theta))
    return np.clip(loss_means + stds * tail_factor, 0.0, 1.0)


def rank_by_risk(risk_scores: np.ndarray) -> np.ndarray:
    """Indices of pairs sorted by decreasing risk (ties broken by original order)."""
    risk_scores = np.asarray(risk_scores, dtype=float)
    return np.argsort(-risk_scores, kind="stable")


# ----------------------------------------------------------- metric registry
#: A risk metric maps (distribution, machine_labels) to per-pair risk scores;
#: ``theta`` is the confidence level forwarded from the training config.
RiskMetricFunction = Callable[..., np.ndarray]

RISK_METRICS = ComponentRegistry("risk metric")


def register_risk_metric(
    name: str,
    function: RiskMetricFunction | None = None,
    *,
    overwrite: bool = False,
) -> Callable[[RiskMetricFunction], RiskMetricFunction] | RiskMetricFunction:
    """Register a risk metric under ``name`` (usable as a decorator).

    The function must accept ``(distribution, machine_labels, *, theta)`` and
    return one risk score per pair.  Registering an existing name raises
    :class:`ConfigurationError` unless ``overwrite=True`` (protecting the
    built-ins from accidental shadowing).
    """
    return RISK_METRICS.register(name, function, overwrite=overwrite)


def registered_risk_metrics() -> list[str]:
    """Names of every registered risk metric, sorted."""
    return RISK_METRICS.keys()


def resolve_risk_metric(name: str) -> RiskMetricFunction:
    """Look up a registered risk metric, with a clear error naming the options."""
    return RISK_METRICS.get(name)


def _var_metric(
    distribution: PortfolioDistribution, machine_labels: np.ndarray, *, theta: float = 0.9
) -> np.ndarray:
    return value_at_risk(distribution, machine_labels, theta=theta)


def _cvar_metric(
    distribution: PortfolioDistribution, machine_labels: np.ndarray, *, theta: float = 0.9
) -> np.ndarray:
    return conditional_value_at_risk(distribution, machine_labels, theta=theta)


def _expectation_metric(
    distribution: PortfolioDistribution, machine_labels: np.ndarray, *, theta: float = 0.9
) -> np.ndarray:
    return expectation_risk(distribution, machine_labels)


register_risk_metric("var", _var_metric)
register_risk_metric("cvar", _cvar_metric)
register_risk_metric("expectation", _expectation_metric)
