"""One-sided decision trees (Section 5.2, Algorithm 1).

A two-sided CART partition tries to make *both* children pure.  Rule generation
for risk analysis only needs *one* pure child per split: the pure child becomes
a rule (risk feature) and the impure child is split again.  The split quality
is the paper's one-sided Gini index (Eq. 7)

    Ĝ(D, o) = min( λ / |D_L| + (1 − λ)·G(D_L),   λ / |D_R| + (1 − λ)·G(D_R) )

with a small λ so purity dominates size, and a class-weighting knob that lets
the generator up-weight the rare matching class when it hunts for matching
rules (the generated matching rules are then re-validated *without* weighting).

The exact Algorithm 1 enumerates every (attribute, class-weight) choice at
every level, which is exponential in the depth; this implementation branches
exhaustively for the first ``branch_depth`` levels (default 1, i.e. every
(metric, class-weight) combination gets its own tree) and proceeds greedily
below that, which preserves the paper's behaviour — a forest of shallow trees
whose pure leaves become hundreds of diverse one-sided rules — at a cost linear
in the number of metrics per level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.records import MATCH, UNMATCH
from ..exceptions import ConfigurationError
from .rules import Condition, RiskRule


@dataclass(frozen=True)
class OneSidedSplit:
    """The outcome of one one-sided partition operation."""

    metric_index: int
    threshold: float
    score: float
    pure_is_left: bool


def gini_value(labels: np.ndarray, weights: np.ndarray | None = None) -> float:
    """(Weighted) Gini impurity of a label subset (Eq. 6)."""
    if len(labels) == 0:
        return 0.0
    if weights is None:
        positive = float(np.mean(labels))
    else:
        total = float(weights.sum())
        if total <= 0.0:
            return 0.0
        positive = float(weights[labels == 1].sum() / total)
    return 1.0 - positive ** 2 - (1.0 - positive) ** 2


def one_sided_gini(
    left_labels: np.ndarray,
    right_labels: np.ndarray,
    lam: float,
    left_weights: np.ndarray | None = None,
    right_weights: np.ndarray | None = None,
) -> tuple[float, bool]:
    """One-sided Gini index of a partition (Eq. 7).

    Returns the index value and whether the *left* subset is the purer
    (smaller-term) side.
    """
    left_term = lam / max(1, len(left_labels)) + (1.0 - lam) * gini_value(left_labels, left_weights)
    right_term = lam / max(1, len(right_labels)) + (1.0 - lam) * gini_value(right_labels, right_weights)
    if left_term <= right_term:
        return left_term, True
    return right_term, False


def best_one_sided_split(
    metric_matrix: np.ndarray,
    labels: np.ndarray,
    metric_index: int,
    lam: float,
    min_support: int,
    weights: np.ndarray | None = None,
    max_thresholds: int = 64,
) -> OneSidedSplit | None:
    """Find the threshold on one metric minimising the one-sided Gini index."""
    column = metric_matrix[:, metric_index]
    unique_values = np.unique(column)
    if len(unique_values) < 2:
        return None
    # Candidate thresholds: midpoints between consecutive distinct values,
    # subsampled when the metric is continuous with many distinct values.
    midpoints = (unique_values[:-1] + unique_values[1:]) / 2.0
    if len(midpoints) > max_thresholds:
        positions = np.linspace(0, len(midpoints) - 1, max_thresholds).astype(int)
        midpoints = midpoints[positions]

    best: OneSidedSplit | None = None
    for threshold in midpoints:
        mask = column <= threshold
        left_count = int(mask.sum())
        right_count = len(labels) - left_count
        if left_count < min_support or right_count < min_support:
            continue
        left_weights = weights[mask] if weights is not None else None
        right_weights = weights[~mask] if weights is not None else None
        score, pure_is_left = one_sided_gini(
            labels[mask], labels[~mask], lam, left_weights, right_weights
        )
        if best is None or score < best.score:
            best = OneSidedSplit(metric_index, float(threshold), float(score), pure_is_left)
    return best


@dataclass
class OneSidedTreeConfig:
    """Hyper-parameters of the one-sided tree construction (paper defaults).

    Parameters
    ----------
    max_depth:
        Maximum number of conditions per rule (``h`` in Algorithm 1, <= 4).
    impurity_threshold:
        Maximum Gini impurity (``τ``) for a leaf to become a rule.
    min_support:
        Minimum number of pairs in an extracted subset (5 in the paper).
    lam:
        Size/purity balance ``λ`` of the one-sided Gini index (0.2 in the paper).
    match_class_weight:
        Weight applied to matching pairs when searching for matching rules
        (1000 in the paper); generated matching rules are re-validated without
        this weight.
    branch_depth:
        Number of levels enumerated exhaustively over all metrics before the
        construction proceeds greedily.
    max_thresholds:
        Cap on candidate thresholds per metric per node.
    """

    max_depth: int = 3
    impurity_threshold: float = 0.1
    min_support: int = 5
    lam: float = 0.2
    match_class_weight: float = 1000.0
    branch_depth: int = 1
    max_thresholds: int = 64

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if not 0.0 <= self.lam <= 1.0:
            raise ConfigurationError("lam must be in [0, 1]")
        if not 0.0 < self.impurity_threshold < 0.5:
            raise ConfigurationError("impurity_threshold must be in (0, 0.5)")
        if self.min_support < 1:
            raise ConfigurationError("min_support must be >= 1")


class OneSidedTreeBuilder:
    """Builds a forest of one-sided trees and extracts their rules.

    Parameters
    ----------
    config:
        Construction hyper-parameters.
    metric_names:
        Qualified metric names (column names of the metric matrix), used to
        produce interpretable rule descriptions.
    """

    def __init__(self, config: OneSidedTreeConfig, metric_names: list[str]) -> None:
        self.config = config
        self.metric_names = list(metric_names)

    # ---------------------------------------------------------------- helpers
    def _leaf_rule(
        self,
        conditions: tuple[Condition, ...],
        labels: np.ndarray,
    ) -> RiskRule | None:
        """Validate a candidate leaf (unweighted purity and support) into a rule."""
        support = len(labels)
        if support < self.config.min_support or not conditions:
            return None
        impurity = gini_value(labels)
        if impurity > self.config.impurity_threshold:
            return None
        positive_fraction = float(np.mean(labels))
        label = MATCH if positive_fraction >= 0.5 else UNMATCH
        purity = positive_fraction if label == MATCH else 1.0 - positive_fraction
        return RiskRule(conditions=conditions, label=label, support=support, purity=purity)

    def _condition_from_split(self, split: OneSidedSplit, pure_side: bool) -> Condition:
        return Condition(
            metric_index=split.metric_index,
            metric_name=self.metric_names[split.metric_index],
            threshold=split.threshold,
            is_leq=pure_side == split.pure_is_left,
        )

    # ----------------------------------------------------------------- build
    def build(self, metric_matrix: np.ndarray, labels: np.ndarray) -> list[RiskRule]:
        """Construct the one-sided forest and return every extracted rule."""
        metric_matrix = np.asarray(metric_matrix, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if len(metric_matrix) != len(labels):
            raise ConfigurationError("metric matrix and labels must have equal length")
        rules: list[RiskRule] = []
        if len(labels) < 2 * self.config.min_support:
            return rules

        for class_weight in (1.0, self.config.match_class_weight):
            weights = np.ones(len(labels), dtype=float)
            weights[labels == 1] = class_weight
            self._construct(
                metric_matrix, labels, weights,
                conditions=(), depth=0, rules=rules, exhaustive=True,
            )
        return rules

    def _construct(
        self,
        metric_matrix: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        conditions: tuple[Condition, ...],
        depth: int,
        rules: list[RiskRule],
        exhaustive: bool,
    ) -> None:
        if depth >= self.config.max_depth or len(labels) < 2 * self.config.min_support:
            return
        n_metrics = metric_matrix.shape[1]
        if exhaustive and depth < self.config.branch_depth:
            candidate_metrics = range(n_metrics)
        else:
            best_split = self._best_split_over_metrics(metric_matrix, labels, weights)
            if best_split is None:
                return
            candidate_metrics = [best_split.metric_index]

        for metric_index in candidate_metrics:
            split = best_one_sided_split(
                metric_matrix, labels, metric_index, self.config.lam,
                self.config.min_support, weights, self.config.max_thresholds,
            )
            if split is None:
                continue
            self._descend(metric_matrix, labels, weights, conditions, depth, rules, split)

    def _best_split_over_metrics(
        self, metric_matrix: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> OneSidedSplit | None:
        best: OneSidedSplit | None = None
        for metric_index in range(metric_matrix.shape[1]):
            split = best_one_sided_split(
                metric_matrix, labels, metric_index, self.config.lam,
                self.config.min_support, weights, self.config.max_thresholds,
            )
            if split is not None and (best is None or split.score < best.score):
                best = split
        return best

    def _descend(
        self,
        metric_matrix: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        conditions: tuple[Condition, ...],
        depth: int,
        rules: list[RiskRule],
        split: OneSidedSplit,
    ) -> None:
        column = metric_matrix[:, split.metric_index]
        left_mask = column <= split.threshold
        pure_mask = left_mask if split.pure_is_left else ~left_mask
        impure_mask = ~pure_mask

        pure_condition = self._condition_from_split(split, pure_side=True)
        pure_conditions = conditions + (pure_condition,)
        rule = self._leaf_rule(pure_conditions, labels[pure_mask])
        if rule is not None:
            rules.append(rule)

        # The impure side keeps being partitioned (greedily below branch_depth).
        impure_condition = self._condition_from_split(split, pure_side=False)
        impure_conditions = conditions + (impure_condition,)
        remaining_labels = labels[impure_mask]
        if len(remaining_labels) >= 2 * self.config.min_support:
            remaining_impurity = gini_value(remaining_labels)
            if remaining_impurity <= self.config.impurity_threshold:
                rule = self._leaf_rule(impure_conditions, remaining_labels)
                if rule is not None:
                    rules.append(rule)
            else:
                self._construct(
                    metric_matrix[impure_mask], remaining_labels, weights[impure_mask],
                    impure_conditions, depth + 1, rules, exhaustive=False,
                )
