"""Automatic risk-feature generation (Section 5).

The :class:`RiskFeatureGenerator` glues the pieces of Section 5 together:

1. vectorise the rule-generation pairs with the basic metrics
   (:class:`~repro.features.vectorizer.PairVectorizer`);
2. grow a forest of one-sided decision trees
   (:class:`~repro.risk.onesided_tree.OneSidedTreeBuilder`), once without class
   weighting (yielding mostly unmatching rules) and once with a large matching
   class weight (yielding matching rules), then validate all rules unweighted;
3. deduplicate and drop redundant/low-coverage rules;
4. estimate each rule's prior equivalence expectation on the classifier
   training data (Section 6.2.1).

The resulting :class:`GeneratedRiskFeatures` carries the rules plus the fitted
vectoriser so that any workload can later be mapped onto the same rule space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.records import MATCH
from ..data.workload import Workload
from ..exceptions import DataError, PersistenceError
from ..features.vectorizer import PairVectorizer
from ..serialization import component_state, require_state, state_field
from .engine import PackedMembership, RuleKernel, legacy_rule_matrix
from .onesided_tree import OneSidedTreeBuilder, OneSidedTreeConfig
from .rules import RiskRule, deduplicate_rules, estimate_expectations, remove_redundant_rules


@dataclass
class GeneratedRiskFeatures:
    """The output of risk-feature generation.

    Attributes
    ----------
    rules:
        The validated, deduplicated one-sided rules with estimated expectations.
    vectorizer:
        The fitted :class:`PairVectorizer`; downstream code uses it to map new
        pairs into the same metric space before computing rule coverage.
    generation_seconds:
        Wall-clock time spent growing the rule forest (Figure 13a).
    """

    rules: list[RiskRule]
    vectorizer: PairVectorizer
    generation_seconds: float = 0.0
    statistics: dict[str, float] = field(default_factory=dict)
    _kernel: RuleKernel | None = field(default=None, init=False, repr=False, compare=False)
    # The exact list object the kernel was compiled from (holding the
    # reference keeps the identity check sound: a freed list's id could be
    # reused by a new list, a plain id() key would then serve a stale kernel).
    _kernel_rules: list | None = field(default=None, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def kernel(self) -> RuleKernel:
        """The compiled rule-coverage kernel, built lazily and reused across calls.

        The kernel is invalidated when ``rules`` is rebound or changes length
        (the two mutations the codebase performs); call
        :meth:`invalidate_kernel` after replacing rule objects in place.
        """
        if (
            self._kernel is None
            or self._kernel_rules is not self.rules
            or self._kernel.n_rules != len(self.rules)
        ):
            self._kernel = RuleKernel(self.rules)
            self._kernel_rules = self.rules
        return self._kernel

    def warm_kernel(self) -> RuleKernel:
        """Compile the rule kernel now (explicit warm-up) and return it.

        Pool workers call this right after unpickling so the first scored
        chunk never pays the kernel build cost; it is also the documented way
        to pre-warm before handing the features to concurrent threads (the
        lazy build is a benign race, but warming makes it a non-event).
        """
        return self.kernel

    def invalidate_kernel(self) -> None:
        """Force the next :attr:`kernel` access to recompile the rule set."""
        self._kernel = None
        self._kernel_rules = None

    # ------------------------------------------------------------- worker safety
    def __getstate__(self) -> dict:
        """Pickle without the lazy kernel cache.

        The compiled :class:`RuleKernel` is derived state: shipping it to pool
        workers would inflate every fork/spawn payload with the flattened
        condition arrays, and its identity-based invalidation check
        (``_kernel_rules is self.rules``) is not meaningful across process
        boundaries.  Workers recompile explicitly via :meth:`warm_kernel`.
        """
        state = self.__dict__.copy()
        state["_kernel"] = None
        state["_kernel_rules"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._kernel = None
        self._kernel_rules = None

    def rule_matrix(self, metric_matrix: np.ndarray) -> np.ndarray:
        """Binary (n_pairs, n_rules) membership matrix over a metric matrix.

        Delegates to the compiled :attr:`kernel`; bit-identical to (and much
        faster than) the legacy per-rule loop, which survives as
        :meth:`rule_matrix_legacy` for parity tests and benchmarks.
        """
        return self.kernel.membership(metric_matrix, dtype=float)

    def rule_matrix_legacy(self, metric_matrix: np.ndarray) -> np.ndarray:
        """The pre-kernel per-rule Python loop (parity/benchmark reference)."""
        return legacy_rule_matrix(self.rules, metric_matrix)

    def membership(
        self, metric_matrix: np.ndarray, packed: bool = False
    ) -> np.ndarray | PackedMembership:
        """Rule membership, optionally bit-packed for memory-bound workloads.

        ``packed=True`` returns a :class:`~repro.risk.engine.PackedMembership`
        (uint8, 8 rules per byte) that
        :func:`~repro.risk.portfolio.aggregate_portfolio` accepts directly.
        """
        if packed:
            return self.kernel.membership_packed(metric_matrix)
        return self.kernel.membership(metric_matrix, dtype=float)

    def describe(self, limit: int | None = None) -> list[str]:
        """Human-readable rule descriptions (optionally only the first ``limit``)."""
        rules = self.rules if limit is None else self.rules[:limit]
        return [rule.describe() for rule in rules]

    def coverage_fraction(self, metric_matrix: np.ndarray) -> float:
        """Fraction of pairs covered by at least one rule (the paper's "high coverage")."""
        matrix = self.rule_matrix(metric_matrix)
        if matrix.shape[1] == 0:
            return 0.0
        return float(np.mean(matrix.sum(axis=1) > 0))

    # ------------------------------------------------------------ persistence
    STATE_KIND = "risk_features"
    STATE_VERSION = 1

    def to_state(self, include_vectorizer: bool = True) -> dict:
        """Export the rules and the fitted vectoriser as a JSON-safe state dict.

        ``include_vectorizer=False`` omits the embedded vectoriser state (which
        contains the full per-attribute IDF tables); the caller must then
        supply a vectoriser to :meth:`from_state`.  The pipeline uses this to
        avoid storing the shared vectoriser twice.
        """
        return component_state(self.STATE_KIND, self.STATE_VERSION, {
            "rules": [rule.to_dict() for rule in self.rules],
            "vectorizer": self.vectorizer.to_state() if include_vectorizer else None,
            "generation_seconds": self.generation_seconds,
            "statistics": {str(key): float(value) for key, value in self.statistics.items()},
        })

    @classmethod
    def from_state(
        cls, state: dict, vectorizer: PairVectorizer | None = None
    ) -> "GeneratedRiskFeatures":
        """Rebuild features written by :meth:`to_state`.

        ``vectorizer`` lets a caller share one already-loaded vectoriser
        instead of inflating the embedded copy (the pipeline does this so its
        vectoriser and its features' vectoriser stay the same object).
        """
        state = require_state(state, cls.STATE_KIND, cls.STATE_VERSION)
        if vectorizer is None:
            vectorizer_state = state_field(state, "vectorizer", cls.STATE_KIND)
            if vectorizer_state is None:
                raise PersistenceError(
                    "risk-features state was saved without an embedded vectoriser; "
                    "pass the shared vectoriser to from_state"
                )
            vectorizer = PairVectorizer.from_state(vectorizer_state)
        rules = [
            RiskRule.from_dict(rule_state)
            for rule_state in state_field(state, "rules", cls.STATE_KIND)
        ]
        return cls(
            rules=rules,
            vectorizer=vectorizer,
            generation_seconds=float(state.get("generation_seconds", 0.0)),
            statistics={str(k): float(v) for k, v in state.get("statistics", {}).items()},
        )


class RiskFeatureGenerator:
    """End-to-end generator of interpretable risk features.

    Parameters
    ----------
    tree_config:
        One-sided tree hyper-parameters (depth, purity threshold, λ, ...).
    min_rule_coverage:
        Minimum number of rule-generation pairs a rule must cover to be kept.
    expectation_smoothing:
        Laplace smoothing used when estimating rule expectations.
    """

    def __init__(
        self,
        tree_config: OneSidedTreeConfig | None = None,
        min_rule_coverage: int = 5,
        expectation_smoothing: float = 1.0,
    ) -> None:
        self.tree_config = tree_config or OneSidedTreeConfig()
        self.min_rule_coverage = min_rule_coverage
        self.expectation_smoothing = expectation_smoothing

    def generate(
        self,
        rule_workload: Workload,
        expectation_workload: Workload | None = None,
        vectorizer: PairVectorizer | None = None,
    ) -> GeneratedRiskFeatures:
        """Generate risk features from labeled data.

        Parameters
        ----------
        rule_workload:
            The labeled pairs used to grow the one-sided trees (the classifier
            training data in the paper's setup).
        expectation_workload:
            The labeled pairs used to estimate rule expectations; defaults to
            ``rule_workload`` (as in the paper, both are the classifier
            training data).
        vectorizer:
            A pre-fitted vectoriser to reuse; a fresh one is fitted on the rule
            workload's tables when omitted.
        """
        if rule_workload.left_table is None and vectorizer is None:
            raise DataError("rule workload has no source tables and no vectorizer was supplied")
        if vectorizer is None:
            vectorizer = PairVectorizer(rule_workload.left_table.schema)
            vectorizer.fit_workload(rule_workload)

        start = time.perf_counter()
        metric_matrix = vectorizer.transform(rule_workload.pairs)
        labels = rule_workload.labels()

        builder = OneSidedTreeBuilder(self.tree_config, vectorizer.feature_names)
        raw_rules = builder.build(metric_matrix, labels)
        rules = deduplicate_rules(raw_rules)
        rules = remove_redundant_rules(rules, metric_matrix, self.min_rule_coverage)

        expectation_source = expectation_workload or rule_workload
        expectation_matrix = (
            metric_matrix if expectation_source is rule_workload
            else vectorizer.transform(expectation_source.pairs)
        )
        rules = estimate_expectations(
            rules, expectation_matrix, expectation_source.labels(), self.expectation_smoothing
        )
        elapsed = time.perf_counter() - start

        statistics = {
            "n_raw_rules": float(len(raw_rules)),
            "n_rules": float(len(rules)),
            "n_matching_rules": float(sum(1 for rule in rules if rule.label == MATCH)),
            "n_unmatching_rules": float(sum(1 for rule in rules if rule.label != MATCH)),
            "generation_seconds": elapsed,
        }
        features = GeneratedRiskFeatures(
            rules=rules,
            vectorizer=vectorizer,
            generation_seconds=elapsed,
            statistics=statistics,
        )
        return features
