"""repro: a reproduction of LearnRisk — interpretable and learnable risk analysis for ER.

The package implements the full system of Chen et al., "Towards Interpretable
and Learnable Risk Analysis for Entity Resolution" (SIGMOD 2020), plus every
substrate it relies on: synthetic benchmark workloads, similarity/difference
metrics, ER classifiers, a small autodiff engine, the baselines it is compared
against and the evaluation harness that regenerates the paper's tables and
figures.

Quick start::

    from repro import LearnRiskPipeline, load_dataset, split_workload

    workload = load_dataset("DS", scale=0.3)
    split = split_workload(workload, ratio=(3, 2, 5), seed=0)
    pipeline = LearnRiskPipeline().fit(split.train, split.validation)
    report = pipeline.analyse(split.test, explain_top=5)
    print(report.auroc, report.top_risky(3))
"""

from .compose import (
    ComponentSpec,
    PipelineSpec,
    StagedPipeline,
    build_pipeline,
    register_classifier,
    register_risk_feature_generator,
    register_risk_metric,
    register_vectorizer,
    register_source,
    registered_classifiers,
    registered_risk_metrics,
    registered_sources,
)
from .data import (
    MATCH,
    UNMATCH,
    CsvPairSource,
    GeneratorSource,
    InMemorySource,
    PairSource,
    Record,
    RecordPair,
    Schema,
    ShardedSource,
    Table,
    Workload,
    load_dataset,
    split_workload,
)
from .evaluation import (
    auroc_score,
    run_comparative_experiment,
    run_holoclean_comparison,
    run_ood_experiment,
    run_parallel_scaling_experiment,
    run_scalability_experiment,
    run_sensitivity_experiment,
)
from .parallel import ChunkScores, ExecutionConfig, ParallelScoringEngine
from .pipeline import LearnRiskPipeline, RiskReport
from .risk import (
    GeneratedRiskFeatures,
    LearnRiskModel,
    OneSidedTreeConfig,
    RiskFeatureGenerator,
    TrainingConfig,
)
from .serve import (
    ModelRegistry,
    RiskService,
    load_pipeline,
    load_staged_pipeline,
    save_pipeline,
)

__version__ = "1.2.0"

__all__ = [
    "ComponentSpec",
    "ChunkScores",
    "CsvPairSource",
    "ExecutionConfig",
    "GeneratedRiskFeatures",
    "GeneratorSource",
    "InMemorySource",
    "LearnRiskModel",
    "LearnRiskPipeline",
    "MATCH",
    "ModelRegistry",
    "OneSidedTreeConfig",
    "PairSource",
    "ParallelScoringEngine",
    "PipelineSpec",
    "Record",
    "RecordPair",
    "RiskFeatureGenerator",
    "RiskReport",
    "RiskService",
    "Schema",
    "ShardedSource",
    "StagedPipeline",
    "Table",
    "TrainingConfig",
    "UNMATCH",
    "Workload",
    "auroc_score",
    "build_pipeline",
    "load_dataset",
    "load_pipeline",
    "load_staged_pipeline",
    "register_classifier",
    "register_risk_feature_generator",
    "register_risk_metric",
    "register_source",
    "register_vectorizer",
    "registered_classifiers",
    "registered_risk_metrics",
    "registered_sources",
    "run_comparative_experiment",
    "run_holoclean_comparison",
    "run_ood_experiment",
    "run_parallel_scaling_experiment",
    "run_scalability_experiment",
    "run_sensitivity_experiment",
    "save_pipeline",
    "split_workload",
    "__version__",
]
