"""The shared string-keyed component-registry primitive.

:class:`ComponentRegistry` maps string keys to factories (or plain callables)
with uniform semantics everywhere a registry appears in the library: duplicate
keys are rejected unless explicitly overwritten, unknown keys fail with an
error naming the registered alternatives, and ``register`` doubles as a
decorator.  The composable pipeline API (:mod:`repro.compose.registries`)
builds its classifier/vectorizer/feature-generator registries on it, and the
core risk-metric registry (:mod:`repro.risk.metrics`) is one too.

This module deliberately depends only on :mod:`repro.exceptions` so that any
layer of the library can host a registry without import cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .exceptions import ConfigurationError


class ComponentRegistry:
    """A named mapping from string keys to component factories.

    Parameters
    ----------
    kind:
        Human-readable component family name, used in error messages
        (``"classifier"``, ``"vectorizer"``, ``"risk metric"``, ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}

    def register(
        self,
        key: str,
        factory: Callable[..., Any] | None = None,
        *,
        overwrite: bool = False,
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``key``; usable as a decorator.

        Raises
        ------
        ConfigurationError
            When ``key`` is empty, the factory is not callable, or ``key`` is
            already registered and ``overwrite`` is ``False``.
        """
        if not key or not isinstance(key, str):
            raise ConfigurationError(f"{self.kind} key must be a non-empty string")

        def decorator(callback: Callable[..., Any]) -> Callable[..., Any]:
            if not callable(callback):
                raise ConfigurationError(f"{self.kind} factory for {key!r} must be callable")
            if key in self._factories and not overwrite:
                raise ConfigurationError(
                    f"{self.kind} {key!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._factories[key] = callback
            return callback

        if factory is None:
            return decorator
        return decorator(factory)

    def unregister(self, key: str) -> None:
        """Remove ``key`` from the registry (missing keys are ignored)."""
        self._factories.pop(key, None)

    def get(self, key: str) -> Callable[..., Any]:
        """The factory registered under ``key``, or a clear error naming the options."""
        try:
            return self._factories[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {key!r}; registered {self.kind}s: {self.keys()}"
            ) from None

    def create(self, key: str, *args: Any, **params: Any) -> Any:
        """Instantiate the component registered under ``key``.

        A ``TypeError`` from the factory (e.g. an unknown parameter name in a
        spec file) is re-raised as :class:`ConfigurationError` naming the
        component, so misconfigured specs fail with actionable messages.
        """
        factory = self.get(key)
        try:
            return factory(*args, **params)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid parameters for {self.kind} {key!r}: {exc}"
            ) from exc

    def keys(self) -> list[str]:
        """Registered keys, sorted."""
        return sorted(self._factories)

    def __contains__(self, key: object) -> bool:
        return key in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._factories)
