"""Multi-worker sharded scoring: fan chunks out, merge results in order.

:class:`ParallelScoringEngine` takes a fitted pipeline plus an
:class:`~repro.parallel.config.ExecutionConfig` and turns any stream of pair
chunks into a stream of :class:`~repro.parallel.chunks.ChunkScores` — scored
by a pool of workers but **emitted in exact source order**, regardless of the
order in which workers finish.  Every consumer of chunked scoring
(``StagedPipeline.analyse_batches``, ``RiskService.score_source``, the serve
CLI, the benchmarks) goes through this one engine, so there is a single place
where the determinism contract lives:

* **Same numbers.**  Workers score with a pipeline rebuilt once per worker
  from the parent pipeline's picklable ``to_state()`` dict — the exact state
  the persistence layer round-trips bit for bit — and chunk scoring runs the
  same :meth:`~repro.compose.staged.StagedPipeline.score_chunk` code path as
  the serial loop.  Together with the batch-invariant reductions of
  :mod:`repro.numerics` this makes parallel output bit-identical to serial
  output at any worker count and any chunk size.
* **Same order.**  Chunks are tagged with their source index at submission
  and results are yielded strictly in that order; completion order never
  leaks.  The engine keeps at most ``config.window`` chunks in flight, so
  parent-side memory stays bounded by the window while the pool never
  starves.
* **Same failure.**  An exception in any worker propagates to the consumer at
  the failed chunk's position in the stream.

Backends: a :class:`~concurrent.futures.ProcessPoolExecutor` for throughput
(each worker process initialises its pipeline once and keeps its rule kernel
warm), a :class:`~concurrent.futures.ThreadPoolExecutor` for small batches
where process startup would dominate (each thread lazily builds its own
pipeline clone, so no mutable state is ever shared), and a serial fallback
that scores with the parent pipeline directly.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from ..data.records import RecordPair
from ..exceptions import ConfigurationError, NotFittedError
from ..obs import get_recorder
from .chunks import ChunkScores
from .config import ExecutionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compose imports us)
    from ..compose.staged import StagedPipeline


# ------------------------------------------------------------ worker side
#: The per-process pipeline of a process-pool worker, rebuilt once by
#: :func:`_initialize_process_worker` and reused for every chunk the worker
#: scores.  Module-global because process pools can only reach workers through
#: module-level functions.
_WORKER_PIPELINE: "StagedPipeline | None" = None

#: One-time pipeline rebuild cost of this worker process, stamped onto the
#: first chunk it returns (then reset to 0).  Process pools can only report
#: initializer-side work through a later task result, hence the stash.
_WORKER_REBUILD_SECONDS: float = 0.0


def _pipeline_from_state(state: dict) -> "StagedPipeline":
    """Rebuild a scoring pipeline from its picklable state and warm it up."""
    # Imported here, not at module level: repro.compose imports repro.parallel
    # for the ExecutionConfig spec field, so the reverse import must be lazy.
    from ..compose.staged import StagedPipeline

    pipeline = StagedPipeline.from_state(state)
    # Explicit warm-up: the rule kernel is a lazy cache that is deliberately
    # dropped from pickled state (see GeneratedRiskFeatures.__getstate__);
    # compiling it here means the first chunk pays no build cost and no lazy
    # state is ever populated mid-scoring.
    pipeline.warm_kernel()
    return pipeline


def _initialize_process_worker(state: dict) -> None:
    """Process-pool initializer: build this worker's pipeline exactly once."""
    global _WORKER_PIPELINE, _WORKER_REBUILD_SECONDS
    start = time.perf_counter()
    _WORKER_PIPELINE = _pipeline_from_state(state)
    _WORKER_REBUILD_SECONDS = time.perf_counter() - start


def _score_chunk_in_process(pairs: list[RecordPair], explain_top: int) -> ChunkScores:
    """Score one chunk with this process's warmed pipeline."""
    global _WORKER_REBUILD_SECONDS
    assert _WORKER_PIPELINE is not None, "process worker was not initialised"
    start = time.perf_counter()
    scores = _WORKER_PIPELINE.score_chunk(pairs, explain_top=explain_top)
    elapsed = time.perf_counter() - start
    rebuild, _WORKER_REBUILD_SECONDS = _WORKER_REBUILD_SECONDS, 0.0
    return dataclasses.replace(
        scores,
        worker=f"pid-{os.getpid()}",
        worker_seconds=elapsed,
        rebuild_seconds=rebuild,
    )


class _ThreadWorkerPipelines(threading.local):
    """One lazily-built pipeline clone per pool thread (never shared)."""

    pipeline: "StagedPipeline | None" = None
    rebuild_seconds: float = 0.0


# ------------------------------------------------------------ parent side
class ParallelScoringEngine:
    """Deterministically ordered fan-out scoring over a worker pool.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.compose.staged.StagedPipeline` (or facade
        subclass).  The engine snapshots its picklable state at construction;
        later mutations of the parent pipeline do not reach the workers.
    config:
        The :class:`ExecutionConfig` describing the pool.

    The engine is a context manager; the pool (if any) is created lazily on
    first use and shut down by :meth:`close` / ``__exit__``.  One engine can
    run :meth:`map_chunks` any number of times and reuses its warmed workers.
    """

    def __init__(self, pipeline: "StagedPipeline", config: ExecutionConfig) -> None:
        if not pipeline.is_fitted:
            raise NotFittedError("ParallelScoringEngine requires a fitted pipeline")
        self.pipeline = pipeline
        self.config = config
        self._state: dict | None = None
        self._executor: Executor | None = None
        self._executor_backend: str | None = None
        self._thread_pipelines = _ThreadWorkerPipelines()
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "ParallelScoringEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._executor_backend = None
        self._closed = True

    # ------------------------------------------------------------- internals
    def _pipeline_state(self) -> dict:
        """The parent pipeline's picklable state, snapshotted once per engine."""
        if self._state is None:
            self._state = self.pipeline.to_state()
        return self._state

    def _score_in_thread(self, pairs: list[RecordPair], explain_top: int) -> ChunkScores:
        """Score one chunk with this thread's private pipeline clone."""
        local = self._thread_pipelines
        if local.pipeline is None:
            build_start = time.perf_counter()
            local.pipeline = _pipeline_from_state(self._pipeline_state())
            local.rebuild_seconds = time.perf_counter() - build_start
        start = time.perf_counter()
        scores = local.pipeline.score_chunk(pairs, explain_top=explain_top)
        elapsed = time.perf_counter() - start
        rebuild, local.rebuild_seconds = local.rebuild_seconds, 0.0
        return dataclasses.replace(
            scores,
            worker=threading.current_thread().name,
            worker_seconds=elapsed,
            rebuild_seconds=rebuild,
        )

    def _get_executor(self, backend: str) -> Executor:
        if self._closed:
            raise ConfigurationError("ParallelScoringEngine is closed")
        if self._executor is not None and self._executor_backend != backend:
            # The resolved backend changed between map_chunks calls (e.g. a
            # small bounded source after an unbounded one); rebuild the pool.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._executor is None:
            if backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-score",
                )
            elif backend == "process":
                import multiprocessing

                context = (
                    multiprocessing.get_context(self.config.start_method)
                    if self.config.start_method is not None
                    else multiprocessing.get_context()
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    mp_context=context,
                    initializer=_initialize_process_worker,
                    initargs=(self._pipeline_state(),),
                )
            else:  # pragma: no cover - guarded by resolve_backend
                raise ConfigurationError(f"cannot build a pool for backend {backend!r}")
            self._executor_backend = backend
        return self._executor

    # --------------------------------------------------------------- scoring
    def map_chunks(
        self,
        chunks: Iterable[list[RecordPair]],
        explain_top: int = 0,
        length_hint: int | None = None,
    ) -> Iterator[tuple[list[RecordPair], ChunkScores]]:
        """Score ``chunks`` on the pool; yield ``(chunk, scores)`` in source order.

        Empty chunks (legal for custom sources) are skipped, exactly like the
        serial streaming loop.  ``length_hint`` (total pairs, when known)
        only steers the ``auto`` backend's process-vs-thread choice — never
        the numbers.
        """
        backend = self.config.resolve_backend(length_hint)
        if backend == "serial":
            for chunk in chunks:
                if not chunk:
                    continue
                yield chunk, self.pipeline.score_chunk(chunk, explain_top=explain_top)
            return

        executor = self._get_executor(backend)
        if backend == "thread":
            submit = lambda chunk: executor.submit(self._score_in_thread, chunk, explain_top)  # noqa: E731
        else:
            submit = lambda chunk: executor.submit(_score_chunk_in_process, chunk, explain_top)  # noqa: E731

        # In-order merge with bounded look-ahead: futures are awaited in
        # submission order (so completion order cannot reorder anything) and
        # at most `window` chunks are in flight, which bounds parent memory.
        pending: deque[tuple[list[RecordPair], Any]] = deque()
        recorder = get_recorder()
        window = self.config.window

        def drain_head() -> tuple[list[RecordPair], ChunkScores]:
            """Await the oldest in-flight chunk, recording merge telemetry."""
            in_flight = len(pending)
            ready_chunk, future = pending.popleft()
            wait_start = time.perf_counter()
            scores = future.result()
            recorder.observe("parallel.chunk_wait_seconds", time.perf_counter() - wait_start)
            recorder.observe("parallel.queue_depth", in_flight)
            recorder.observe("parallel.window_occupancy", in_flight / window)
            recorder.count("parallel.chunks")
            recorder.count("parallel.pairs", len(ready_chunk))
            if scores.worker_seconds:
                recorder.observe("parallel.worker_chunk_seconds", scores.worker_seconds)
                if scores.worker:
                    # One histogram per worker (bounded by pool size): makes
                    # load imbalance visible in the snapshot and gives the
                    # benchmarks their per-worker chunk timings.
                    recorder.observe(
                        f"parallel.worker.{scores.worker}.chunk_seconds",
                        scores.worker_seconds,
                    )
            if scores.rebuild_seconds:
                recorder.observe("parallel.worker_rebuild_seconds", scores.rebuild_seconds)
            return ready_chunk, scores

        try:
            for chunk in chunks:
                if not chunk:
                    continue
                pending.append((chunk, submit(chunk)))
                if len(pending) >= window:
                    yield drain_head()
            while pending:
                yield drain_head()
        finally:
            for _, future in pending:
                future.cancel()

    def score_stream(
        self,
        chunks: Iterable[list[RecordPair]],
        explain_top: int = 0,
        length_hint: int | None = None,
    ) -> Iterator[ChunkScores]:
        """Like :meth:`map_chunks` but yielding only the scores."""
        for _, scores in self.map_chunks(chunks, explain_top=explain_top, length_hint=length_hint):
            yield scores
