"""Execution configuration of the sharded scoring engine.

:class:`ExecutionConfig` is the one knob surface for parallel scoring: how
many workers, which pool backend, how large the streamed chunks are and how
much work may be in flight at once.  It is a plain JSON-serialisable
dataclass so it can ride along in a :class:`~repro.compose.spec.PipelineSpec`
(the ``execution`` field) and round-trip through ``build_pipeline`` exactly
like the component specs.

Backends
--------
``"serial"``
    No pool at all; chunks are scored in the calling thread with the calling
    pipeline.  This is also what any backend degrades to at ``workers <= 1``.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Startup is near-free,
    so this is the right pool for small batches, but the GIL serialises the
    pure-Python vectorisation work.
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; each worker process
    rebuilds the pipeline once from its picklable state and keeps it warm.
    This is the backend that actually multiplies throughput by cores.
``"auto"``
    ``"process"``, except for workloads known to be smaller than
    :attr:`ExecutionConfig.min_process_pairs` (process startup would dominate)
    and for platforms without working process pools, which fall back to
    ``"thread"``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from ..exceptions import ConfigurationError

#: The backends a config may name explicitly.
BACKENDS = ("auto", "serial", "thread", "process")

#: Process start methods a config may pin (``None`` keeps the platform default).
START_METHODS = ("fork", "spawn", "forkserver")

#: Below this many pairs (when the source length is known) the ``auto``
#: backend prefers a thread pool: forking/spawning interpreter processes
#: costs more than it buys on small batches.
DEFAULT_MIN_PROCESS_PAIRS = 4096


@dataclass(frozen=True)
class ExecutionConfig:
    """How scoring work is fanned out (see module docstring).

    Attributes
    ----------
    workers:
        Number of pool workers.  ``1`` means serial execution regardless of
        backend.
    backend:
        ``"auto"``, ``"serial"``, ``"thread"`` or ``"process"``.
    chunk_size:
        Pairs per streamed chunk when the caller does not pass an explicit
        batch/chunk size of its own; ``None`` defers to the call site's
        default.  Output is bit-identical at any chunk size, so this is a
        throughput knob, never a correctness knob.
    min_process_pairs:
        Known-length workloads smaller than this fall back from ``"auto"``'s
        process pool to a thread pool.
    start_method:
        Multiprocessing start method for the process backend (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` keeps the platform default.
        Scores are bit-identical under every start method — workers rebuild
        the pipeline from explicit state, never from inherited lazy caches.
    max_pending:
        In-flight chunks per worker.  The engine keeps at most
        ``workers * max_pending`` chunks submitted ahead of the consumer, so
        parent-side memory stays bounded while the pool never starves.
    """

    workers: int = 1
    backend: str = "auto"
    chunk_size: int | None = None
    min_process_pairs: int = DEFAULT_MIN_PROCESS_PAIRS
    start_method: str | None = None
    max_pending: int = 2

    def __post_init__(self) -> None:
        if int(self.workers) < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        object.__setattr__(self, "workers", int(self.workers))
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {self.backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        if self.chunk_size is not None:
            if int(self.chunk_size) < 1:
                raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")
            object.__setattr__(self, "chunk_size", int(self.chunk_size))
        if int(self.min_process_pairs) < 0:
            raise ConfigurationError(
                f"min_process_pairs must be >= 0, got {self.min_process_pairs}"
            )
        object.__setattr__(self, "min_process_pairs", int(self.min_process_pairs))
        if self.start_method is not None and self.start_method not in START_METHODS:
            raise ConfigurationError(
                f"unknown start_method {self.start_method!r}; "
                f"expected one of {', '.join(START_METHODS)} or null"
            )
        if int(self.max_pending) < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {self.max_pending}")
        object.__setattr__(self, "max_pending", int(self.max_pending))

    # --------------------------------------------------------------- resolution
    def with_workers(self, workers: int | None) -> "ExecutionConfig":
        """This config with ``workers`` overridden (``None`` keeps the current value)."""
        if workers is None or workers == self.workers:
            return self
        return replace(self, workers=workers)

    def resolve_backend(self, length: int | None = None) -> str:
        """The concrete backend for a workload of ``length`` pairs (``None`` = unknown).

        ``workers <= 1`` always resolves to ``"serial"``; ``"auto"`` picks a
        thread pool for known-small workloads and a process pool otherwise.
        """
        if self.workers <= 1:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if length is not None and length < self.min_process_pairs:
            return "thread"
        return "process"

    @property
    def window(self) -> int:
        """Maximum chunks in flight (submitted but not yet yielded)."""
        return self.workers * self.max_pending

    def resolve_chunk_size(self, default: int) -> int:
        """The chunk size to stream with when the caller passed none of its own."""
        return default if self.chunk_size is None else self.chunk_size

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "chunk_size": self.chunk_size,
            "min_process_pairs": self.min_process_pairs,
            "start_method": self.start_method,
            "max_pending": self.max_pending,
        }

    @classmethod
    def from_dict(cls, values: Mapping[str, Any]) -> "ExecutionConfig":
        """Build a config from a mapping, rejecting unknown keys loudly."""
        if not isinstance(values, Mapping):
            raise ConfigurationError(
                f"execution config must be a mapping, got {type(values).__name__}"
            )
        known = {config_field.name for config_field in fields(cls)}
        unknown = set(values) - known
        if unknown:
            raise ConfigurationError(
                f"unknown execution config keys {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        return cls(**dict(values))

    @classmethod
    def coerce(cls, value: "ExecutionConfig | Mapping[str, Any] | None") -> "ExecutionConfig | None":
        """Accept a config, its ``to_dict`` mapping, or ``None`` (passes through)."""
        if value is None or isinstance(value, ExecutionConfig):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise ConfigurationError(
            f"execution must be an ExecutionConfig or a mapping, "
            f"got {type(value).__name__}"
        )
