"""Multi-worker sharded scoring (`repro.parallel`).

The execution subsystem of the stack: :class:`ExecutionConfig` describes *how*
scoring work is fanned out (worker count, pool backend, chunk size, in-flight
window), :class:`ParallelScoringEngine` does the fanning — process pool for
throughput, thread pool for small batches, serial fallback — and merges the
per-chunk :class:`ChunkScores` back **in deterministic source order**, bit-
identical to the serial path at any worker count and chunk size.

Entry points higher up the stack accept the same knobs directly:

* ``StagedPipeline.analyse_batches(source, workers=4)``
* ``RiskService.score_source(source, workers=4)``
* ``python -m repro.serve score --chunk-size 256 --workers 4``
* ``PipelineSpec(execution={"workers": 4})`` → rides along in saved models

See ``benchmarks/bench_parallel_scoring.py`` for the measured scaling and
``tests/parallel/`` for the parity guarantees.
"""

from .chunks import ChunkScores
from .config import BACKENDS, DEFAULT_MIN_PROCESS_PAIRS, START_METHODS, ExecutionConfig
from .engine import ParallelScoringEngine

__all__ = [
    "BACKENDS",
    "DEFAULT_MIN_PROCESS_PAIRS",
    "START_METHODS",
    "ChunkScores",
    "ExecutionConfig",
    "ParallelScoringEngine",
]
