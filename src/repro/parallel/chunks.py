"""The unit of work of the sharded scoring engine: one scored chunk.

:class:`ChunkScores` is what a worker sends back for one chunk of candidate
pairs: the classifier outputs, the risk scores, the in-chunk risk ranking and
any requested rule-level explanations.  It deliberately does *not* carry the
pairs themselves — the dispatching side already holds every chunk it submitted
(it needs them to emit results in source order), so shipping the pairs back
would double the inter-process traffic for nothing.

Everything in here is plain numpy plus frozen dataclasses, so a chunk result
pickles cheaply across process boundaries and compares exactly in parity
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..risk.model import FeatureExplanation


@dataclass(frozen=True)
class ChunkScores:
    """Scoring outputs for one chunk of pairs, aligned with the chunk order.

    Attributes
    ----------
    probabilities:
        The classifier's equivalence probabilities, one per pair.
    machine_labels:
        Thresholded hard labels, one per pair.
    risk_scores:
        Mislabeling-risk scores, one per pair.
    ranking:
        In-chunk pair indices ordered from highest to lowest risk
        (``np.argsort(-risk_scores, kind="stable")``, exactly as the serial
        report computes it).
    explanations:
        Rule-level explanations of the ``explain_top`` riskiest pairs of the
        chunk, keyed by in-chunk pair index.
    worker, worker_seconds, rebuild_seconds:
        Telemetry stamped by pool workers (:mod:`repro.parallel.engine`):
        which worker scored the chunk (``pid-<n>`` / thread name), its scoring
        wall-clock, and — on the first chunk a worker returns — the one-time
        cost of rebuilding its pipeline from state.  Pure observability:
        excluded from :meth:`__eq__`, so the parity contract is untouched.
    """

    probabilities: np.ndarray
    machine_labels: np.ndarray
    risk_scores: np.ndarray
    ranking: np.ndarray
    explanations: dict[int, list[FeatureExplanation]] = field(default_factory=dict)
    worker: str | None = None
    worker_seconds: float = 0.0
    rebuild_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.risk_scores)

    def __eq__(self, other: object) -> bool:
        """Exact (bitwise on arrays) equality — what the parity suite asserts."""
        if not isinstance(other, ChunkScores):
            return NotImplemented
        return (
            np.array_equal(self.probabilities, other.probabilities)
            and np.array_equal(self.machine_labels, other.machine_labels)
            and np.array_equal(self.risk_scores, other.risk_scores)
            and np.array_equal(self.ranking, other.ranking)
            and self.explanations == other.explanations
        )
