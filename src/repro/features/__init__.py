"""Basic metric registry and pair vectorisation."""

from .metric_registry import (
    DIFFERENCE,
    SIMILARITY,
    MetricSpec,
    count_metrics,
    metrics_for_attribute,
    metrics_for_schema,
)
from .vectorizer import PairVectorizer

__all__ = [
    "DIFFERENCE",
    "MetricSpec",
    "PairVectorizer",
    "SIMILARITY",
    "count_metrics",
    "metrics_for_attribute",
    "metrics_for_schema",
]
