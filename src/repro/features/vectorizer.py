"""Pair vectorisation: candidate pairs → metric matrices.

The :class:`PairVectorizer` turns a workload's candidate pairs into a dense
``(n_pairs, n_metrics)`` numpy matrix, one column per
:class:`~repro.features.metric_registry.MetricSpec`.  This matrix is the shared
substrate of the whole system:

* the ER classifiers (our DeepMatcher substitute) train on it;
* the one-sided decision trees that generate risk features split on it;
* the TrustScore baseline measures distances in it.

The vectoriser is *fitted* on the two source tables so that corpus-level
statistics (currently the per-attribute IDF tables used by TF-IDF cosine and
diff-key-token) come from the data rather than from the pairs being scored.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..data.records import RecordPair, Table
from ..data.schema import AttributeType, Schema
from ..data.workload import Workload
from ..exceptions import NotFittedError, PersistenceError
from ..obs import get_recorder
from ..serialization import component_state, require_state, state_field
from ..text.tokenize import idf_weights
from .metric_registry import MetricSpec, metrics_for_schema


class PairVectorizer:
    """Compute the basic-metric feature matrix of candidate pairs.

    Parameters
    ----------
    schema:
        The shared schema of the two tables.
    metrics:
        Explicit metric specs; by default all metrics applicable to the schema.
    """

    def __init__(self, schema: Schema, metrics: Sequence[MetricSpec] | None = None) -> None:
        self.schema = schema
        self.metrics: list[MetricSpec] = list(metrics) if metrics is not None else metrics_for_schema(schema)
        self._idf_by_attribute: dict[str, dict[str, float]] | None = None

    @property
    def feature_names(self) -> list[str]:
        """Qualified metric names, one per output column."""
        return [spec.name for spec in self.metrics]

    @property
    def n_features(self) -> int:
        """Number of output columns."""
        return len(self.metrics)

    def fit(self, left_table: Table | None, right_table: Table | None) -> "PairVectorizer":
        """Fit corpus statistics (IDF tables) from the source tables.

        Passing ``None`` tables is allowed; IDF-aware metrics then fall back to
        their uninformed defaults.
        """
        idf_by_attribute: dict[str, dict[str, float]] = {}
        for attribute in self.schema:
            if attribute.attr_type is not AttributeType.TEXT:
                continue
            documents: list[str | None] = []
            for table in (left_table, right_table):
                if table is None:
                    continue
                documents.extend(table.column(attribute.name))
            idf_by_attribute[attribute.name] = idf_weights(documents)
        self._idf_by_attribute = idf_by_attribute
        return self

    def fit_workload(self, workload: Workload) -> "PairVectorizer":
        """Convenience wrapper fitting from a workload's source tables."""
        return self.fit(workload.left_table, workload.right_table)

    def _context_for(self, spec: MetricSpec) -> dict:
        idf_tables = self._idf_by_attribute or {}
        return {"idf": idf_tables.get(spec.attribute)}

    def transform_pair(self, pair: RecordPair) -> np.ndarray:
        """Return the metric vector of a single pair."""
        if self._idf_by_attribute is None:
            raise NotFittedError("PairVectorizer.transform called before fit")
        vector = np.empty(len(self.metrics), dtype=float)
        for index, spec in enumerate(self.metrics):
            left_value, right_value = pair.values(spec.attribute)
            vector[index] = spec(left_value, right_value, self._context_for(spec))
        return vector

    def transform(self, pairs: Iterable[RecordPair]) -> np.ndarray:
        """Return the ``(n_pairs, n_metrics)`` matrix for ``pairs``.

        Batched column-major path: the output matrix is filled one metric
        column at a time, so per-metric setup (the context dict, and the
        attribute-value extraction shared by all metrics of one attribute)
        happens once per column instead of once per pair × metric, and no
        per-pair row arrays are allocated and re-stacked.
        """
        if self._idf_by_attribute is None:
            raise NotFittedError("PairVectorizer.transform called before fit")
        # The "vectorize" span lives here, at the lowest shared level, so the
        # pipeline stages, the streaming loop and the serving cache-miss path
        # all contribute to one vectorisation total in the metrics snapshot.
        with get_recorder().span("vectorize"):
            pairs = list(pairs)
            matrix = np.empty((len(pairs), len(self.metrics)), dtype=float)
            if not pairs:
                return matrix
            values_by_attribute: dict[str, list[tuple[object, object]]] = {}
            for column, spec in enumerate(self.metrics):
                pair_values = values_by_attribute.get(spec.attribute)
                if pair_values is None:
                    pair_values = [pair.values(spec.attribute) for pair in pairs]
                    values_by_attribute[spec.attribute] = pair_values
                context = self._context_for(spec)
                function = spec.function
                matrix[:, column] = [
                    function(left_value, right_value, context)
                    for left_value, right_value in pair_values
                ]
            return matrix

    def fit_transform(self, workload: Workload) -> np.ndarray:
        """Fit on the workload's tables and transform its pairs in one call."""
        return self.fit_workload(workload).transform(workload.pairs)

    def metric_index(self, name: str) -> int:
        """Return the column index of the metric with qualified name ``name``."""
        try:
            return self.feature_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown metric {name!r}") from exc

    # ------------------------------------------------------------ persistence
    STATE_KIND = "pair_vectorizer"
    STATE_VERSION = 1

    def __getstate__(self) -> dict:
        """Pickle through the persistence state, not the live ``__dict__``.

        The metric functions are registry closures (not picklable), so a raw
        ``__dict__`` pickle breaks any multiprocessing user that ships a
        vectoriser — or anything holding one, like
        :class:`~repro.risk.feature_generation.GeneratedRiskFeatures` — to a
        worker.  Round-tripping through :meth:`to_state` instead rebuilds the
        functions from the metric registry on unpickle, with the same
        restriction as disk persistence: only registry metrics survive.
        """
        return self.to_state()

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(PairVectorizer.from_state(state).__dict__)

    def to_state(self) -> dict:
        """Export the fitted vectoriser as a JSON-safe state dict.

        Metric functions are not serialised; they are rebuilt from the schema
        through :func:`~repro.features.metric_registry.metrics_for_schema` and
        matched by qualified name, so only registry metrics round-trip.
        """
        return component_state(self.STATE_KIND, self.STATE_VERSION, {
            "schema": self.schema.to_dict(),
            "metric_names": self.feature_names,
            "idf_by_attribute": self._idf_by_attribute,
        })

    @classmethod
    def from_state(cls, state: dict) -> "PairVectorizer":
        """Rebuild a vectoriser written by :meth:`to_state`."""
        state = require_state(state, cls.STATE_KIND, cls.STATE_VERSION)
        schema = Schema.from_dict(state_field(state, "schema", cls.STATE_KIND))
        metric_names = state_field(state, "metric_names", cls.STATE_KIND)
        available = {spec.name: spec for spec in metrics_for_schema(schema)}
        metrics = []
        for name in metric_names:
            spec = available.get(name)
            if spec is None:
                raise PersistenceError(
                    f"saved vectoriser references metric {name!r}, which the metric "
                    f"registry does not define for this schema (custom metrics cannot "
                    f"be persisted)"
                )
            metrics.append(spec)
        vectorizer = cls(schema, metrics=metrics)
        idf_tables = state_field(state, "idf_by_attribute", cls.STATE_KIND)
        if idf_tables is not None:
            vectorizer._idf_by_attribute = {
                str(attribute): {str(token): float(weight) for token, weight in table.items()}
                for attribute, table in idf_tables.items()
            }
        return vectorizer
