"""Pair vectorisation: candidate pairs → metric matrices.

The :class:`PairVectorizer` turns a workload's candidate pairs into a dense
``(n_pairs, n_metrics)`` numpy matrix, one column per
:class:`~repro.features.metric_registry.MetricSpec`.  This matrix is the shared
substrate of the whole system:

* the ER classifiers (our DeepMatcher substitute) train on it;
* the one-sided decision trees that generate risk features split on it;
* the TrustScore baseline measures distances in it.

The vectoriser is *fitted* on the two source tables so that corpus-level
statistics (currently the per-attribute IDF tables used by TF-IDF cosine and
diff-key-token) come from the data rather than from the pairs being scored.

**Batched dispatch.**  :meth:`PairVectorizer.transform` scores column by
column: metrics whose spec carries a ``batch_function`` (every registry
metric) run as one numpy kernel over the whole batch of interned pairs,
reading cached tokenisations from a :class:`~repro.text.batch.CorpusIndex`
that normalises and tokenises each distinct value exactly once across the
vectoriser's lifetime; metrics without one (custom metrics) fall back to the
scalar per-pair loop.  Both paths are bit-identical — batching is purely a
throughput decision, toggled with ``batch_enabled``.  The two sub-paths are
timed under ``vectorize.batch`` / ``vectorize.scalar`` child spans and
counted per column, so a metrics snapshot shows exactly how much of
vectorisation ran batched.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..data.records import RecordPair, Table
from ..data.schema import AttributeType, Schema
from ..data.workload import Workload
from ..exceptions import NotFittedError, PersistenceError
from ..obs import get_recorder
from ..serialization import component_state, require_state, state_field
from ..text.batch.interner import CorpusIndex
from ..text.tokenize import idf_weights
from .metric_registry import MetricSpec, metrics_for_schema


class PairVectorizer:
    """Compute the basic-metric feature matrix of candidate pairs.

    Parameters
    ----------
    schema:
        The shared schema of the two tables.
    metrics:
        Explicit metric specs; by default all metrics applicable to the schema.
    batch_enabled:
        Dispatch columns to batched kernels when the spec carries one
        (default).  ``False`` forces the scalar per-pair path everywhere —
        same numbers bit for bit, only slower; the toggle exists for parity
        testing and as an escape hatch.
    corpus_cache_entries:
        Soft cap on distinct interned values held by the corpus index; the
        index resets (between transforms, never mid-batch) once exceeded, so
        unbounded streams run in bounded memory.
    """

    def __init__(
        self,
        schema: Schema,
        metrics: Sequence[MetricSpec] | None = None,
        *,
        batch_enabled: bool = True,
        corpus_cache_entries: int = 1_000_000,
    ) -> None:
        self.schema = schema
        self.metrics: list[MetricSpec] = list(metrics) if metrics is not None else metrics_for_schema(schema)
        self.batch_enabled = batch_enabled
        self.corpus_cache_entries = corpus_cache_entries
        #: The lazily created interning cache behind the batched kernels.
        #: Deliberately *not* part of the persisted/pickled state: workers and
        #: reloaded vectorisers rebuild their own (it is a pure cache, so
        #: scores cannot depend on it).
        self.corpus_index: CorpusIndex | None = None
        self._separators: dict[str, str] = {
            attribute.name: attribute.separator for attribute in schema
        }
        self._idf_by_attribute: dict[str, dict[str, float]] | None = None

    @property
    def feature_names(self) -> list[str]:
        """Qualified metric names, one per output column."""
        return [spec.name for spec in self.metrics]

    @property
    def n_features(self) -> int:
        """Number of output columns."""
        return len(self.metrics)

    def fit(self, left_table: Table | None, right_table: Table | None) -> "PairVectorizer":
        """Fit corpus statistics (IDF tables) from the source tables.

        Passing ``None`` tables is allowed; IDF-aware metrics then fall back to
        their uninformed defaults.
        """
        idf_by_attribute: dict[str, dict[str, float]] = {}
        for attribute in self.schema:
            if attribute.attr_type is not AttributeType.TEXT:
                continue
            documents: list[str | None] = []
            for table in (left_table, right_table):
                if table is None:
                    continue
                documents.extend(table.column(attribute.name))
            idf_by_attribute[attribute.name] = idf_weights(documents)
        self._idf_by_attribute = idf_by_attribute
        return self

    def fit_workload(self, workload: Workload) -> "PairVectorizer":
        """Convenience wrapper fitting from a workload's source tables."""
        return self.fit(workload.left_table, workload.right_table)

    def _context_for(self, spec: MetricSpec) -> dict:
        idf_tables = self._idf_by_attribute or {}
        return {"idf": idf_tables.get(spec.attribute)}

    def _ensure_corpus_index(self) -> CorpusIndex | None:
        """The live corpus index, created lazily (``None`` when batching is off)."""
        if not self.batch_enabled:
            return None
        if self.corpus_index is None:
            self.corpus_index = CorpusIndex(max_entries=self.corpus_cache_entries)
        return self.corpus_index

    def batch_coverage(self) -> dict[str, list[str]]:
        """Which metric columns have a batched kernel and which fall back.

        ``{"batched": [...qualified names...], "scalar": [...]}`` — the CI
        guard asserts the core token-set metrics never silently land in
        ``scalar``.
        """
        return {
            "batched": [spec.name for spec in self.metrics if spec.batch_function is not None],
            "scalar": [spec.name for spec in self.metrics if spec.batch_function is None],
        }

    def transform_pair(self, pair: RecordPair) -> np.ndarray:
        """Return the metric vector of a single pair.

        Routed through :meth:`transform` on a single-pair batch, so the
        serving cache-miss path shares the batched/cached dispatch and the
        ``vectorize`` span instead of duplicating the per-metric loop.
        """
        return self.transform([pair])[0]

    def transform(self, pairs: Iterable[RecordPair]) -> np.ndarray:
        """Return the ``(n_pairs, n_metrics)`` matrix for ``pairs``.

        The matrix is filled one metric column at a time.  Contexts and
        attribute-value extraction are hoisted per attribute (shared by all of
        the attribute's metrics), and each column dispatches to the spec's
        batched kernel when it has one — reading interned representations
        from the corpus index — or to the scalar per-pair loop otherwise.
        """
        if self._idf_by_attribute is None:
            raise NotFittedError("PairVectorizer.transform called before fit")
        # The "vectorize" span lives here, at the lowest shared level, so the
        # pipeline stages, the streaming loop and the serving cache-miss path
        # all contribute to one vectorisation total in the metrics snapshot.
        recorder = get_recorder()
        with recorder.span("vectorize"):
            pairs = list(pairs)
            matrix = np.empty((len(pairs), len(self.metrics)), dtype=float)
            if not pairs:
                return matrix
            index = self._ensure_corpus_index()
            if index is not None:
                # Enforce the memory cap strictly *between* transforms: entry
                # ids handed out below stay valid for the whole batch.
                index.maybe_reset()
            contexts: dict[str, dict] = {}
            interned: dict[str, tuple] = {}
            values_by_attribute: dict[str, list[tuple[object, object]]] = {}
            for column, spec in enumerate(self.metrics):
                attribute = spec.attribute
                context = contexts.get(attribute)
                if context is None:
                    context = contexts[attribute] = self._context_for(spec)
                pair_values = values_by_attribute.get(attribute)
                if pair_values is None:
                    pair_values = [pair.values(attribute) for pair in pairs]
                    values_by_attribute[attribute] = pair_values
                if spec.batch_function is not None and index is not None:
                    entry = interned.get(attribute)
                    if entry is None:
                        view = index.view(attribute, self._separators.get(attribute, ","))
                        left_ids = view.entry_ids([values[0] for values in pair_values])
                        right_ids = view.entry_ids([values[1] for values in pair_values])
                        # Deduplicate the batch to its distinct value pairs
                        # once per attribute; every metric column shares the
                        # bundle and its dense pair ids.
                        dedup = view.pair_dedup(left_ids, right_ids)
                        entry = interned[attribute] = (view, dedup)
                    view, dedup = entry
                    with recorder.span("batch"):
                        # The view memoises distinct-pair scores, so the
                        # kernel only sees never-scored pairs.
                        matrix[:, column] = view.memoized_scores(
                            spec.metric, spec.batch_function, dedup, context
                        )
                    recorder.count("vectorize.batch_columns")
                else:
                    function = spec.function
                    with recorder.span("scalar"):
                        matrix[:, column] = [
                            function(left_value, right_value, context)
                            for left_value, right_value in pair_values
                        ]
                    recorder.count("vectorize.scalar_columns")
            return matrix

    def fit_transform(self, workload: Workload) -> np.ndarray:
        """Fit on the workload's tables and transform its pairs in one call."""
        return self.fit_workload(workload).transform(workload.pairs)

    def metric_index(self, name: str) -> int:
        """Return the column index of the metric with qualified name ``name``."""
        try:
            return self.feature_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown metric {name!r}") from exc

    # ------------------------------------------------------------ persistence
    STATE_KIND = "pair_vectorizer"
    STATE_VERSION = 1

    def __getstate__(self) -> dict:
        """Pickle through the persistence state, not the live ``__dict__``.

        The metric functions are registry closures (not picklable), so a raw
        ``__dict__`` pickle breaks any multiprocessing user that ships a
        vectoriser — or anything holding one, like
        :class:`~repro.risk.feature_generation.GeneratedRiskFeatures` — to a
        worker.  Round-tripping through :meth:`to_state` instead rebuilds the
        functions from the metric registry on unpickle, with the same
        restriction as disk persistence: only registry metrics survive.
        """
        return self.to_state()

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(PairVectorizer.from_state(state).__dict__)

    def to_state(self) -> dict:
        """Export the fitted vectoriser as a JSON-safe state dict.

        Metric functions are not serialised; they are rebuilt from the schema
        through :func:`~repro.features.metric_registry.metrics_for_schema` and
        matched by qualified name, so only registry metrics round-trip.
        """
        return component_state(self.STATE_KIND, self.STATE_VERSION, {
            "schema": self.schema.to_dict(),
            "metric_names": self.feature_names,
            "idf_by_attribute": self._idf_by_attribute,
        })

    @classmethod
    def from_state(cls, state: dict) -> "PairVectorizer":
        """Rebuild a vectoriser written by :meth:`to_state`."""
        state = require_state(state, cls.STATE_KIND, cls.STATE_VERSION)
        schema = Schema.from_dict(state_field(state, "schema", cls.STATE_KIND))
        metric_names = state_field(state, "metric_names", cls.STATE_KIND)
        available = {spec.name: spec for spec in metrics_for_schema(schema)}
        metrics = []
        for name in metric_names:
            spec = available.get(name)
            if spec is None:
                raise PersistenceError(
                    f"saved vectoriser references metric {name!r}, which the metric "
                    f"registry does not define for this schema (custom metrics cannot "
                    f"be persisted)"
                )
            metrics.append(spec)
        vectorizer = cls(schema, metrics=metrics)
        idf_tables = state_field(state, "idf_by_attribute", cls.STATE_KIND)
        if idf_tables is not None:
            vectorizer._idf_by_attribute = {
                str(attribute): {str(token): float(weight) for token, weight in table.items()}
                for attribute, table in idf_tables.items()
            }
        return vectorizer
