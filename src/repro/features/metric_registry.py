"""Basic metric design (Section 5.1, Figure 5).

The rule-generation algorithm and the ER classifiers both consume a *metric
vector* per candidate pair: one value per (attribute, metric) combination.
Which metrics apply to an attribute depends on its
:class:`~repro.data.schema.AttributeType`, following the paper's hierarchy:

* every string attribute gets a core set of similarity metrics;
* entity names additionally get the non-substring / non-prefix / non-suffix
  difference metrics and their abbreviation variants;
* entity sets get entity-level Jaccard plus diff-cardinality / distinct-entity;
* text descriptions get TF-IDF cosine plus diff-key-token;
* numeric attributes get relative similarity, equality and the inequality /
  relative-difference metrics.

Each metric is wrapped in a :class:`MetricSpec` carrying a ``kind`` tag
(``"similarity"`` or ``"difference"``) so that downstream consumers (e.g. the
experiment setup that reports "19 basic metrics of which 8 are diff metrics")
can count and filter them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from ..data.schema import Attribute, AttributeType, Schema
from ..text import difference, similarity
from ..text.batch.kernels import BATCH_KERNELS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..text.batch.interner import AttributeView

#: A metric takes the two attribute values and an optional context dict
#: (currently only ``idf``) and returns a float.
MetricFunction = Callable[[object, object, dict], float]

SIMILARITY = "similarity"
DIFFERENCE = "difference"


class BatchMetricFunction(Protocol):
    """The batched form of a metric: one call scores a whole column.

    Instead of two raw values it receives the attribute's corpus-index view
    (interned tokens, char codes, cached representations) plus the left/right
    entry-id arrays of the batch, and returns the ``(batch,)`` float column —
    bit-identical to calling the scalar :data:`MetricFunction` per pair.
    """

    def __call__(
        self,
        view: "AttributeView",
        left_ids: np.ndarray,
        right_ids: np.ndarray,
        context: dict,
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class MetricSpec:
    """A single basic metric bound to an attribute.

    Parameters
    ----------
    attribute:
        The attribute name the metric compares.
    metric:
        The metric's short name (``"jaccard"``, ``"non_substring"``, ...).
    kind:
        Either ``"similarity"`` or ``"difference"``.
    function:
        The callable computing the metric value.
    batch_function:
        Optional batched implementation (see :class:`BatchMetricFunction`).
        Registry-built specs carry the matching kernel from
        :data:`repro.text.batch.BATCH_KERNELS`; specs constructed by hand
        default to ``None`` and are scored through the scalar fallback.
    """

    attribute: str
    metric: str
    kind: str
    function: MetricFunction
    batch_function: BatchMetricFunction | None = field(default=None, compare=False)

    @property
    def name(self) -> str:
        """Qualified metric name, e.g. ``"title.jaccard"``."""
        return f"{self.attribute}.{self.metric}"

    def __call__(self, left_value: object, right_value: object, context: dict | None = None) -> float:
        return float(self.function(left_value, right_value, context or {}))


def _wrap_simple(function: Callable[[object, object], float]) -> MetricFunction:
    """Adapt a two-argument metric to the three-argument metric interface."""

    def wrapped(left_value: object, right_value: object, context: dict) -> float:
        return function(left_value, right_value)

    return wrapped


def _wrap_idf(function: Callable[..., float]) -> MetricFunction:
    """Adapt a metric that accepts an ``idf`` keyword to the metric interface."""

    def wrapped(left_value: object, right_value: object, context: dict) -> float:
        return function(left_value, right_value, idf=context.get("idf"))

    return wrapped


def _wrap_separator(function: Callable[..., float], separator: str) -> MetricFunction:
    """Bind an entity-set metric to the attribute's separator."""

    def wrapped(left_value: object, right_value: object, context: dict) -> float:
        return function(left_value, right_value, separator=separator)

    return wrapped


_CORE_STRING_SIMILARITIES: tuple[tuple[str, Callable[[object, object], float]], ...] = (
    ("jaccard", similarity.jaccard_similarity),
    ("edit", similarity.edit_similarity),
    ("jaro_winkler", similarity.jaro_winkler_similarity),
    ("overlap", similarity.overlap_coefficient),
)


def metrics_for_attribute(attribute: Attribute) -> list[MetricSpec]:
    """Return the basic metrics applicable to ``attribute``.

    Every returned spec whose short name has a kernel in
    :data:`~repro.text.batch.BATCH_KERNELS` carries it as
    ``batch_function`` — with full registry coverage today, so the default
    vectoriser scores every column batched.
    """
    specs: list[MetricSpec] = []

    def add(spec: MetricSpec) -> None:
        specs.append(replace(spec, batch_function=BATCH_KERNELS.get(spec.metric)))

    if attribute.attr_type is AttributeType.NUMERIC:
        add(MetricSpec(attribute.name, "numeric_similarity", SIMILARITY,
                       _wrap_simple(similarity.numeric_similarity)))
        # Exact numeric (in)equality is treated as *difference* knowledge: a
        # text-embedding matcher sees "1998" and "1999" as near-identical
        # tokens, so exact-equality signals belong to the rule side only.
        add(MetricSpec(attribute.name, "numeric_inequality", DIFFERENCE,
                       _wrap_simple(difference.numeric_inequality)))
        add(MetricSpec(attribute.name, "numeric_difference", DIFFERENCE,
                       _wrap_simple(difference.numeric_difference)))
        return specs

    if attribute.attr_type is AttributeType.CATEGORICAL:
        add(MetricSpec(attribute.name, "exact", SIMILARITY, _wrap_simple(similarity.exact_match)))
        add(MetricSpec(attribute.name, "edit", SIMILARITY, _wrap_simple(similarity.edit_similarity)))
        return specs

    for metric_name, function in _CORE_STRING_SIMILARITIES:
        add(MetricSpec(attribute.name, metric_name, SIMILARITY, _wrap_simple(function)))

    if attribute.attr_type is AttributeType.ENTITY_NAME:
        add(MetricSpec(attribute.name, "lcs", SIMILARITY, _wrap_simple(similarity.lcs_similarity)))
        add(MetricSpec(attribute.name, "non_substring", DIFFERENCE,
                       _wrap_simple(difference.non_substring)))
        add(MetricSpec(attribute.name, "non_prefix", DIFFERENCE,
                       _wrap_simple(difference.non_prefix)))
        add(MetricSpec(attribute.name, "abbr_non_substring", DIFFERENCE,
                       _wrap_simple(difference.abbr_non_substring)))
        add(MetricSpec(attribute.name, "abbr_non_prefix", DIFFERENCE,
                       _wrap_simple(difference.abbr_non_prefix)))
    elif attribute.attr_type is AttributeType.ENTITY_SET:
        add(MetricSpec(attribute.name, "entity_jaccard", SIMILARITY,
                       _wrap_separator(similarity.entity_jaccard_similarity, attribute.separator)))
        add(MetricSpec(attribute.name, "monge_elkan", SIMILARITY,
                       _wrap_simple(similarity.monge_elkan_similarity)))
        add(MetricSpec(attribute.name, "diff_cardinality", DIFFERENCE,
                       _wrap_separator(difference.diff_cardinality, attribute.separator)))
        add(MetricSpec(attribute.name, "distinct_entity", DIFFERENCE,
                       _wrap_separator(difference.distinct_entity_fraction, attribute.separator)))
    elif attribute.attr_type is AttributeType.TEXT:
        add(MetricSpec(attribute.name, "cosine_tfidf", SIMILARITY,
                       _wrap_idf(similarity.cosine_tfidf_similarity)))
        add(MetricSpec(attribute.name, "lcs", SIMILARITY, _wrap_simple(similarity.lcs_similarity)))
        add(MetricSpec(attribute.name, "diff_key_token", DIFFERENCE,
                       _wrap_idf(difference.diff_key_token_fraction)))
    return specs


def metrics_for_schema(schema: Schema) -> list[MetricSpec]:
    """Return the full list of basic metrics for every attribute of ``schema``."""
    specs: list[MetricSpec] = []
    for attribute in schema:
        specs.extend(metrics_for_attribute(attribute))
    return specs


def count_metrics(specs: list[MetricSpec]) -> dict[str, int]:
    """Count the metrics by kind (reported in the paper's experimental setup)."""
    return {
        "total": len(specs),
        SIMILARITY: sum(1 for spec in specs if spec.kind == SIMILARITY),
        DIFFERENCE: sum(1 for spec in specs if spec.kind == DIFFERENCE),
    }
