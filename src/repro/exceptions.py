"""Exception hierarchy for the ``repro`` package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration problems from data problems and from model-usage
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A record, table or pair does not conform to the declared schema."""


class DataError(ReproError):
    """A dataset, workload or split is malformed or inconsistent."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter value or combination of parameters was supplied.

    Also a :class:`ValueError` so that callers following the standard-library
    convention (``except ValueError``) catch configuration mistakes without
    importing the library's exception hierarchy.
    """


class PersistenceError(ReproError):
    """A saved model state is missing, corrupted or version-incompatible."""


class ConvergenceWarning(UserWarning):
    """An iterative procedure stopped before reaching its convergence target."""
